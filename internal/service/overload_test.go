package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// The admission limiter under sustained overload: requests beyond
// MaxConcurrent are rejected with ErrOverloaded (never queued past the
// deadline), the rejection surfaces as HTTP 429, and both the rejection
// counter and the outcome-labelled request metrics record it.
func TestOverloadReturns429AndIsCounted(t *testing.T) {
	svc := New(Config{MaxConcurrent: 1, DefaultTimeout: 25 * time.Millisecond})
	defer svc.Close()
	if err := svc.Create("d", widerDB(t, 8), nil); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	query := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}

	// A healthy query first, so the metrics later show the ok outcome
	// next to the overloaded one.
	if code, body := query(`{"dataset":"d","request":{"predicate":"exists","states":[0,1],"times":[2,3]}}`); code != http.StatusOK {
		t.Fatalf("healthy query: %d %s", code, body)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var enterOnce sync.Once
	testHookEvalStart = func() {
		enterOnce.Do(func() { close(entered) })
		<-release
	}
	defer func() { testHookEvalStart = nil }()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The holder occupies the only admission slot; its own outcome
		// (it outlives its deadline inside the hook) is irrelevant here.
		query(`{"dataset":"d","request":{"predicate":"exists","states":[0,1],"times":[2,3]}}`)
	}()
	<-entered

	// A saturated request races its own deadline against the admission
	// rejection (both fire at the default timeout), so one probe may
	// surface either; the 429 must show up within a few attempts, and
	// every attempt must be rejected — never queued behind the holder.
	saw429 := false
	for i := 0; i < 50 && !saw429; i++ {
		body := fmt.Sprintf(`{"dataset":"d","request":{"predicate":"exists","states":[0,1],"times":[%d]}}`, 4+i)
		code, respBody := query(body)
		switch code {
		case http.StatusTooManyRequests:
			saw429 = true
			var eb struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal([]byte(respBody), &eb); err != nil || !strings.Contains(eb.Error, "overloaded") {
				t.Fatalf("429 body %q does not name the overload", respBody)
			}
		case http.StatusOK:
			t.Fatalf("saturated query got through (attempt %d): %s", i, respBody)
		}
	}
	close(release)
	wg.Wait()
	if !saw429 {
		t.Fatal("no 429 observed across 50 saturated requests")
	}
	if rej := svc.Stats().Rejected; rej == 0 {
		t.Fatal("rejections not counted in Stats")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	metrics := string(data)
	for _, want := range []string{
		"ust_rejected_total",
		`ust_http_requests_total{endpoint="query",code="200"}`,
		`ust_http_requests_total{endpoint="query",code="429"}`,
		`ust_request_duration_seconds_bucket{endpoint="query",outcome="ok",le="+Inf"}`,
		`ust_request_duration_seconds_bucket{endpoint="query",outcome="overloaded",le="+Inf"}`,
		`ust_request_duration_seconds_count{endpoint="query",outcome="overloaded"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
	// The scrape itself must not appear: /metrics is uninstrumented so
	// scrapes don't perturb the distributions they read.
	if strings.Contains(metrics, `endpoint="metrics"`) {
		t.Error("/metrics instrumented itself")
	}
}
