// Package service is the multi-tenant serving layer over the query
// engine: named datasets (each a Database/Engine pair), per-request
// deadlines, an admission limiter bounding concurrent evaluations, and
// single-flight coalescing of identical in-flight requests on top of
// the engine's score cache. It is the in-process backbone of the HTTP
// front end (cmd/ustserve) and of ust.Service in the facade, but is a
// complete embeddable server on its own.
//
// Concurrency model: a Database is safe for concurrent reads but not
// for mutation concurrent with anything, so each dataset carries an
// RWMutex — evaluations and subscriptions hold it shared, ingest holds
// it exclusively. The engine's score cache underneath is already
// concurrency-safe, so parallel readers share sweeps.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ust/internal/core"
	"ust/internal/markov"
	"ust/internal/shard"
	"ust/internal/spatial"
	"ust/internal/store"
	"ust/internal/wire"
)

// Sentinel errors. The HTTP layer maps them to status codes.
var (
	// ErrUnknownDataset: the named dataset does not exist.
	ErrUnknownDataset = errors.New("service: unknown dataset")
	// ErrDatasetExists: create/load would overwrite an existing dataset.
	ErrDatasetExists = errors.New("service: dataset already exists")
	// ErrOverloaded: the admission limiter could not grant a slot before
	// the request's deadline.
	ErrOverloaded = errors.New("service: overloaded")
	// ErrClosed: the service has been shut down.
	ErrClosed = errors.New("service: closed")
	// ErrNoResolver: the request carries a geometric region but the
	// dataset has no spatial resolver to ground it.
	ErrNoResolver = errors.New("service: dataset has no spatial resolver")
	// ErrBadIngest: an Observe/Track payload failed validation (unknown
	// object, dimension mismatch, duplicate id/time, …) — a caller
	// mistake, not a server fault.
	ErrBadIngest = errors.New("service: bad ingest")
	// ErrStaleGeneration: an Import/Evict carried a migration generation
	// the dataset has already applied — a replayed or reordered transfer,
	// rejected so a rebalance can never double-apply.
	ErrStaleGeneration = errors.New("service: stale migration generation")
)

// Config tunes a Service.
type Config struct {
	// Options tune the engine built for each dataset (cache budget,
	// default strategy, Monte-Carlo defaults).
	Options core.Options
	// MaxConcurrent bounds concurrently running evaluations service-wide
	// (admission control). ≤ 0 selects DefaultMaxConcurrent.
	MaxConcurrent int
	// DefaultTimeout is applied to requests whose context carries no
	// deadline of its own. 0 means no implicit deadline.
	DefaultTimeout time.Duration
	// Shards, when > 1, backs every dataset with a sharded engine
	// (internal/shard): objects partitioned across that many shard
	// engines by consistent hashing, requests fanned out and merged
	// with byte-identical results. The wire surface is unchanged —
	// single-process scale-out today, and the contract for the
	// multi-process deployment later.
	Shards int
	// Engines, when set, builds each dataset's engine instead of the
	// default core.Engine / shard.Router construction — the hook the
	// coordinator uses to back datasets with a ring of remote workers
	// (internal/dist). The factory returns the evaluation surface and
	// the ingest surface (usually the same value). Overrides Shards.
	Engines EngineFactory
	// Role labels this process in /metrics (ust_role): "server" (the
	// default), "coordinator" or "worker".
	Role string
	// WorkerHealth, when set, snapshots the coordinator's health-probe
	// state for /metrics (ust_worker_healthy{worker}). The service
	// stays decoupled from the prober's package — the process wiring
	// adapts its snapshot into this shape.
	WorkerHealth func() []WorkerHealth
}

// WorkerHealth is one probed worker's liveness as exposed in /metrics.
type WorkerHealth struct {
	Worker  string
	Healthy bool
}

// Evaluator is the engine surface a dataset serves queries through —
// satisfied by *core.Engine, *shard.Router and the distributed router.
type Evaluator interface {
	Evaluate(ctx context.Context, req core.Request) (*core.Response, error)
	EvaluateSeq(ctx context.Context, req core.Request) iter.Seq2[core.Result, error]
	CacheStats() core.CacheStats
}

// Ingester is the mutation surface behind a dataset — satisfied by
// *core.Database and *shard.Router.
type Ingester interface {
	Add(*core.Object) error
	ReplaceObject(*core.Object) error
}

// EngineFactory builds the engine pair for one dataset (Config.Engines).
type EngineFactory func(name string, db *core.Database) (Evaluator, Ingester, error)

// DefaultMaxConcurrent is the default admission-limiter width.
const DefaultMaxConcurrent = 64

// Info describes one named dataset.
type Info struct {
	// Name is the dataset's service-wide identifier.
	Name string
	// Objects is the current object count.
	Objects int
	// States is the default chain's state-space size.
	States int
	// Version is the database mutation generation (advances on ingest).
	Version uint64
}

// Stats is a snapshot of the service-wide counters surfaced at /metrics.
type Stats struct {
	// Requests counts evaluation requests admitted into Evaluate (batch)
	// and Stream entry points, including coalesced ones.
	Requests uint64
	// Coalesced counts requests answered by joining an identical
	// in-flight evaluation instead of running their own (single-flight).
	Coalesced uint64
	// Evaluations counts evaluations actually executed.
	Evaluations uint64
	// Rejected counts requests that gave up waiting for admission.
	Rejected uint64
	// Ingests counts observation/object mutations.
	Ingests uint64
	// Subscriptions is the number of currently active subscriptions.
	Subscriptions uint64
	// Updates counts subscription updates delivered.
	Updates uint64
	// InFlight is the number of evaluations currently holding an
	// admission slot.
	InFlight uint64
}

// Service owns named datasets and serves queries, streams and
// subscriptions over them. Safe for concurrent use.
type Service struct {
	cfg    Config
	sem    chan struct{}
	flight flightGroup
	// sweeps is the coordinator side of the networked sweep tier,
	// served at /v1/sweeps by the HTTP layer. Always present; it costs
	// nothing until a worker talks to it.
	sweeps *SweepBoard
	// ready gates /readyz: true once startup loading finished, false
	// again while draining. Embedders that never touch it are ready from
	// construction.
	ready       atomic.Bool
	ringMembers atomic.Int64
	// httpMetrics backs the per-endpoint latency histograms and
	// status-code counters of /metrics (see metrics.go); populated by
	// the HTTP layer's instrumented handlers.
	httpMetrics *httpMetrics

	mu       sync.RWMutex
	datasets map[string]*dataset
	closed   bool

	requests    atomic.Uint64
	coalesced   atomic.Uint64
	evaluations atomic.Uint64
	rejected    atomic.Uint64
	ingests     atomic.Uint64
	subs        atomic.Int64
	updates     atomic.Uint64
	inFlight    atomic.Int64
}

// dataset is one named Database/engine pair plus its subscribers.
type dataset struct {
	name   string
	mu     sync.RWMutex // shared: evaluate/stream/subscribe; exclusive: ingest
	db     *core.Database
	engine Evaluator
	ing    Ingester
	// single is the unsharded engine when the dataset is not sharded
	// (nil otherwise); Service.Engine exposes it to in-process callers.
	single *core.Engine
	// resolver grounds geometric regions for this dataset; nil when the
	// dataset has no geometry (e.g. loaded from a bare store file).
	resolver spatial.Resolver
	// lastGen is the highest migration generation applied through
	// ImportObjects/EvictObjects; earlier generations are rejected with
	// ErrStaleGeneration. chains canonicalizes imported own-chain objects
	// by content fingerprint so a migrated chain group stays one group
	// (store v2 images encode each own chain separately). Both are
	// touched only under mu exclusive.
	lastGen uint64
	chains  map[uint64]*markov.Chain

	subMu      sync.Mutex
	subs       map[*Subscription]struct{}
	subsClosed bool  // set by closeSubs; rejects late registrations
	subsErr    error // why (dataset dropped / service closed)
}

// New builds an empty service.
func New(cfg Config) *Service {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	s := &Service{
		cfg:         cfg,
		sem:         make(chan struct{}, cfg.MaxConcurrent),
		sweeps:      NewSweepBoard(0, 0),
		datasets:    map[string]*dataset{},
		httpMetrics: newHTTPMetrics(),
	}
	s.flight = flightGroup{calls: map[string]*flightCall{}, coalesced: &s.coalesced}
	s.ready.Store(true)
	s.ringMembers.Store(int64(max(cfg.Shards, 1)))
	return s
}

// Sweeps exposes the service's sweep lease board (the /v1/sweeps
// backing store) for embedders and tests.
func (s *Service) Sweeps() *SweepBoard { return s.sweeps }

// SetReady flips the /readyz gate: false during startup loading and
// drain, true while serving.
func (s *Service) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the /readyz gate.
func (s *Service) Ready() bool { return s.ready.Load() }

// SetRingMembers records the evaluation ring width surfaced at /metrics
// (ust_ring_members): shard count in-process, worker count for a
// coordinator.
func (s *Service) SetRingMembers(n int) { s.ringMembers.Store(int64(n)) }

// Close shuts the service down: every subscription is terminated and
// subsequent calls fail with ErrClosed. In-flight evaluations finish.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	dss := make([]*dataset, 0, len(s.datasets))
	for _, ds := range s.datasets {
		dss = append(dss, ds)
	}
	s.mu.Unlock()
	for _, ds := range dss {
		ds.closeSubs(ErrClosed)
		ds.closeEngine()
	}
}

// closeEngine releases engine-held resources (remote-backend
// connections, shard goroutines) when the engine exposes a Close.
func (ds *dataset) closeEngine() {
	if c, ok := ds.engine.(interface{ Close() error }); ok {
		_ = c.Close()
	}
}

// Create registers db under name. The database must not be mutated
// behind the service's back afterwards; route ingest through Observe
// and Track. resolver may be nil.
func (s *Service) Create(name string, db *core.Database, resolver spatial.Resolver) error {
	if name == "" {
		return fmt.Errorf("service: empty dataset name")
	}
	if db == nil {
		return fmt.Errorf("service: nil database")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, dup := s.datasets[name]; dup {
		return fmt.Errorf("%w: %q", ErrDatasetExists, name)
	}
	ds := &dataset{
		name:     name,
		db:       db,
		resolver: resolver,
		subs:     map[*Subscription]struct{}{},
	}
	if s.cfg.Engines != nil {
		eng, ing, err := s.cfg.Engines(name, db)
		if err != nil {
			return err
		}
		ds.engine = eng
		ds.ing = ing
	} else if s.cfg.Shards > 1 {
		router, err := shard.New(db, s.cfg.Shards, s.cfg.Options)
		if err != nil {
			return err
		}
		ds.engine = router
		ds.ing = router
	} else {
		ds.single = core.NewEngine(db, s.cfg.Options)
		ds.engine = ds.single
		ds.ing = db
	}
	s.datasets[name] = ds
	return nil
}

// Load reads a database in the binary store format and registers it
// under name.
func (s *Service) Load(name string, r io.Reader) error {
	// Buffer the image and decode through the mapped path: for v2
	// uploads the dataset adopts the probability column straight out of
	// the request body instead of re-allocating per observation. The
	// buffer is owned by the dataset from here on.
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	db, err := store.LoadDatabaseMapped(data)
	if err != nil {
		return err
	}
	return s.Create(name, db, nil)
}

// Save writes the named dataset in the binary store format, under the
// dataset's read lock so a consistent snapshot is captured even while
// queries and ingest continue on other datasets.
func (s *Service) Save(name string, w io.Writer) error {
	ds, err := s.dataset(name)
	if err != nil {
		return err
	}
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return store.SaveDatabase(w, ds.db)
}

// Drop removes the named dataset and terminates its subscriptions.
func (s *Service) Drop(name string) error {
	s.mu.Lock()
	ds, ok := s.datasets[name]
	if ok {
		delete(s.datasets, name)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	ds.closeSubs(fmt.Errorf("%w: %q", ErrUnknownDataset, name))
	ds.closeEngine()
	return nil
}

// Datasets lists the registered datasets sorted by name.
func (s *Service) Datasets() []Info {
	s.mu.RLock()
	dss := make([]*dataset, 0, len(s.datasets))
	for _, ds := range s.datasets {
		dss = append(dss, ds)
	}
	s.mu.RUnlock()
	infos := make([]Info, 0, len(dss))
	for _, ds := range dss {
		infos = append(infos, ds.info())
	}
	sort.Slice(infos, func(a, b int) bool { return infos[a].Name < infos[b].Name })
	return infos
}

// Info describes the named dataset.
func (s *Service) Info(name string) (Info, error) {
	ds, err := s.dataset(name)
	if err != nil {
		return Info{}, err
	}
	return ds.info(), nil
}

// Engine exposes the named dataset's engine for in-process callers that
// need direct access (experiments, tests). Mutating its database
// directly bypasses subscription notification — use Observe/Track.
// Sharded datasets (Config.Shards > 1) have no single engine and return
// an error.
func (s *Service) Engine(name string) (*core.Engine, error) {
	ds, err := s.dataset(name)
	if err != nil {
		return nil, err
	}
	if ds.single == nil {
		return nil, fmt.Errorf("service: dataset %q is sharded; no single engine to expose", name)
	}
	return ds.single, nil
}

// CacheStats aggregates engine score-cache counters across datasets.
func (s *Service) CacheStats() core.CacheStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var agg core.CacheStats
	for _, ds := range s.datasets {
		st := ds.engine.CacheStats()
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Evictions += st.Evictions
		agg.Expired += st.Expired
		agg.Entries += st.Entries
		agg.Bytes += st.Bytes
	}
	return agg
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	subs := s.subs.Load()
	if subs < 0 {
		subs = 0
	}
	inFlight := s.inFlight.Load()
	if inFlight < 0 {
		inFlight = 0
	}
	return Stats{
		Requests:      s.requests.Load(),
		Coalesced:     s.coalesced.Load(),
		Evaluations:   s.evaluations.Load(),
		Rejected:      s.rejected.Load(),
		Ingests:       s.ingests.Load(),
		Subscriptions: uint64(subs),
		Updates:       s.updates.Load(),
		InFlight:      uint64(inFlight),
	}
}

func (s *Service) dataset(name string) (*dataset, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	ds, ok := s.datasets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	return ds, nil
}

func (ds *dataset) info() Info {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return Info{
		Name:    ds.name,
		Objects: ds.db.Len(),
		States:  ds.db.DefaultChain().NumStates(),
		Version: ds.db.Version(),
	}
}

// --- ingest ---------------------------------------------------------------

// Observe appends an observation to an existing object of the named
// dataset and notifies its subscriptions. The observation time must not
// duplicate an existing one.
func (s *Service) Observe(name string, objectID int, obs core.Observation) error {
	ds, err := s.dataset(name)
	if err != nil {
		return err
	}
	ds.mu.Lock()
	err = func() error {
		o := ds.db.Get(objectID)
		if o == nil {
			return fmt.Errorf("%w: unknown object %d in dataset %q", ErrBadIngest, objectID, name)
		}
		ch := ds.db.ChainOf(o)
		if obs.PDF == nil || obs.PDF.NumStates() != ch.NumStates() {
			return fmt.Errorf("%w: observation pdf dimension mismatch for object %d", ErrBadIngest, objectID)
		}
		updated, oerr := o.WithObservation(obs)
		if oerr != nil {
			return fmt.Errorf("%w: %v", ErrBadIngest, oerr)
		}
		if rerr := ds.ing.ReplaceObject(updated); rerr != nil {
			return fmt.Errorf("%w: %v", ErrBadIngest, rerr)
		}
		return nil
	}()
	ds.mu.Unlock()
	if err != nil {
		return err
	}
	s.ingests.Add(1)
	ds.notifySubs()
	return nil
}

// Track adds a brand-new object to the named dataset and notifies its
// subscriptions.
func (s *Service) Track(name string, o *core.Object) error {
	ds, err := s.dataset(name)
	if err != nil {
		return err
	}
	ds.mu.Lock()
	err = ds.ing.Add(o)
	ds.mu.Unlock()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadIngest, err)
	}
	s.ingests.Add(1)
	ds.notifySubs()
	return nil
}

// --- worker surface -------------------------------------------------------
//
// The three endpoints a distributed router drives on its workers:
// AggregateFactors ships raw Bernoulli factors (the coordinator folds
// them in canonical order — pooling per-shard PMFs would break
// byte-identity), ImportObjects and EvictObjects apply migration slices
// under a generation fence. Import/Evict require an unsharded dataset:
// a worker IS one shard, it does not re-shard its slice.

// AggregateFactors computes the factor decomposition of an aggregate
// request against the named dataset, under the service deadline and
// admission control. The dataset's engine must expose the factor
// surface (core.Engine does; distributed routers answer aggregates
// through Evaluate instead).
func (s *Service) AggregateFactors(ctx context.Context, name string, req core.Request) (*core.FactorSet, error) {
	ds, err := s.dataset(name)
	if err != nil {
		return nil, err
	}
	req, err = ds.resolveRegion(req)
	if err != nil {
		return nil, err
	}
	fac, ok := ds.engine.(interface {
		AggregateFactors(ctx context.Context, req core.Request) (*core.FactorSet, error)
	})
	if !ok {
		return nil, fmt.Errorf("%w: dataset %q cannot factor aggregates", ErrBadIngest, name)
	}
	s.requests.Add(1)
	ctx, cancel := s.withDeadline(ctx)
	defer cancel()
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	s.evaluations.Add(1)
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return fac.AggregateFactors(ctx, req)
}

// ImportObjects upserts a store-encoded batch of objects into the named
// dataset under migration generation gen. Generations must strictly
// increase per dataset; a replayed or reordered transfer fails with
// ErrStaleGeneration and changes nothing. Own-chain objects are
// canonicalized by chain fingerprint so a chain group split across
// transfer batches (the store encodes each own chain separately)
// re-merges into one group — which is what keeps the worker's emission
// order identical to the coordinator's shadow.
func (s *Service) ImportObjects(name string, gen uint64, image []byte) error {
	ds, err := s.dataset(name)
	if err != nil {
		return err
	}
	batch, err := store.LoadDatabaseMapped(image)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadIngest, err)
	}
	ds.mu.Lock()
	err = func() error {
		if ds.single == nil {
			return fmt.Errorf("%w: dataset %q is sharded; workers import into unsharded datasets", ErrBadIngest, name)
		}
		if gen <= ds.lastGen {
			return fmt.Errorf("%w: generation %d already applied (at %d)", ErrStaleGeneration, gen, ds.lastGen)
		}
		if batch.DefaultChain().Fingerprint() != ds.db.DefaultChain().Fingerprint() {
			return fmt.Errorf("%w: import batch default chain differs from dataset %q", ErrBadIngest, name)
		}
		for _, o := range batch.Objects() {
			canon, cerr := ds.canonicalizeLocked(o)
			if cerr != nil {
				return fmt.Errorf("%w: %v", ErrBadIngest, cerr)
			}
			var aerr error
			if ds.db.Get(canon.ID) != nil {
				aerr = ds.db.ReplaceObject(canon)
			} else {
				aerr = ds.db.Add(canon)
			}
			if aerr != nil {
				return fmt.Errorf("%w: %v", ErrBadIngest, aerr)
			}
		}
		ds.lastGen = gen
		return nil
	}()
	ds.mu.Unlock()
	if err != nil {
		return err
	}
	s.ingests.Add(1)
	ds.notifySubs()
	return nil
}

// canonicalizeLocked maps an imported object's own chain to the
// dataset's canonical chain of the same fingerprint — registering it as
// canonical on first sight — so equal chains stay pointer-identical.
// Requires ds.mu held exclusively.
func (ds *dataset) canonicalizeLocked(o *core.Object) (*core.Object, error) {
	if o.Chain == nil {
		return o, nil
	}
	if ds.chains == nil {
		ds.chains = map[uint64]*markov.Chain{}
		def := ds.db.DefaultChain()
		ds.chains[def.Fingerprint()] = def
		for _, existing := range ds.db.Objects() {
			ch := ds.db.ChainOf(existing)
			if _, seen := ds.chains[ch.Fingerprint()]; !seen {
				ds.chains[ch.Fingerprint()] = ch
			}
		}
	}
	fp := o.Chain.Fingerprint()
	canon, ok := ds.chains[fp]
	if !ok {
		ds.chains[fp] = o.Chain
		return o, nil
	}
	if canon == o.Chain {
		return o, nil
	}
	return core.NewObjectSorted(o.ID, canon, o.Observations)
}

// EvictObjects removes the given object ids from the named dataset
// under migration generation gen (same fence as ImportObjects). Unknown
// ids fail — an eviction for an object the worker never held means the
// topology drifted.
func (s *Service) EvictObjects(name string, gen uint64, ids []int) error {
	ds, err := s.dataset(name)
	if err != nil {
		return err
	}
	ds.mu.Lock()
	err = func() error {
		if ds.single == nil {
			return fmt.Errorf("%w: dataset %q is sharded; workers evict from unsharded datasets", ErrBadIngest, name)
		}
		if gen <= ds.lastGen {
			return fmt.Errorf("%w: generation %d already applied (at %d)", ErrStaleGeneration, gen, ds.lastGen)
		}
		for _, id := range ids {
			if rerr := ds.db.Remove(id); rerr != nil {
				return fmt.Errorf("%w: %v", ErrBadIngest, rerr)
			}
		}
		ds.lastGen = gen
		return nil
	}()
	ds.mu.Unlock()
	if err != nil {
		return err
	}
	s.ingests.Add(1)
	ds.notifySubs()
	return nil
}

// --- evaluation -----------------------------------------------------------

// withDeadline applies the service's default timeout when the caller's
// context has none.
func (s *Service) withDeadline(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.cfg.DefaultTimeout <= 0 {
		return ctx, func() {}
	}
	if _, has := ctx.Deadline(); has {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.cfg.DefaultTimeout)
}

// admit acquires an admission slot, failing with ErrOverloaded when the
// context expires first.
func (s *Service) admit(ctx context.Context) (release func(), err error) {
	select {
	case s.sem <- struct{}{}:
	default:
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			s.rejected.Add(1)
			return nil, fmt.Errorf("%w: %v", ErrOverloaded, context.Cause(ctx))
		}
	}
	s.inFlight.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			s.inFlight.Add(-1)
			<-s.sem
		})
	}, nil
}

// resolveRegion attaches the dataset's resolver to region-carrying
// requests — top-level regions and compound-expression atoms alike
// (wire-decoded and text-parsed requests arrive with nil resolvers).
func (ds *dataset) resolveRegion(req core.Request) (core.Request, error) {
	if !req.NeedsResolver() {
		return req, nil
	}
	if ds.resolver == nil {
		return req, fmt.Errorf("%w: %q", ErrNoResolver, ds.name)
	}
	return req.AttachResolver(ds.resolver), nil
}

// testHookEvalStart, when set, runs inside every evaluation after
// admission and locking; tests use it to hold evaluations open while
// asserting coalescing and admission behavior.
var testHookEvalStart func()

// Evaluate answers one batch request against the named dataset, with
// the service deadline, admission control and single-flight coalescing
// applied. Identical concurrent requests (same dataset, same canonical
// wire encoding, same database version) share one evaluation; each
// caller receives its own copy of the result slice. Response.Results
// entries may share Dist slices across callers — treat them as
// read-only.
func (s *Service) Evaluate(ctx context.Context, name string, req core.Request) (*core.Response, error) {
	ds, err := s.dataset(name)
	if err != nil {
		return nil, err
	}
	req, err = ds.resolveRegion(req)
	if err != nil {
		return nil, err
	}
	s.requests.Add(1)
	ctx, cancel := s.withDeadline(ctx)
	defer cancel()

	run := func(ctx context.Context) (*core.Response, error) {
		release, aerr := s.admit(ctx)
		if aerr != nil {
			return nil, aerr
		}
		defer release()
		s.evaluations.Add(1)
		ds.mu.RLock()
		defer ds.mu.RUnlock()
		if testHookEvalStart != nil {
			testHookEvalStart()
		}
		return ds.engine.Evaluate(ctx, req)
	}

	key, ok := s.flightKey(ds, req)
	if !ok {
		return run(ctx)
	}
	// The detached evaluation inherits the leader's effective deadline
	// (explicit or the applied default) — waiters that outlive it keep
	// the evaluation alive only until that bound; callers with no
	// deadline at all leave it bounded by last-waiter cancellation.
	var timeout time.Duration
	if dl, has := ctx.Deadline(); has {
		timeout = time.Until(dl)
	}
	resp, err := s.flight.do(ctx, key, timeout, run)
	if err != nil {
		return nil, err
	}
	return shareResponse(resp), nil
}

// flightKey derives the single-flight key: dataset identity, database
// generation and the request's canonical wire bytes. Requests that
// cannot be canonically encoded (exotic region implementations) simply
// skip coalescing.
func (s *Service) flightKey(ds *dataset, req core.Request) (string, bool) {
	enc, err := wire.EncodeRequest(req)
	if err != nil {
		return "", false
	}
	ds.mu.RLock()
	version := ds.db.Version()
	ds.mu.RUnlock()
	return fmt.Sprintf("%s\x00%d\x00%s", ds.name, version, enc), true
}

// shareResponse hands one coalesced result to one caller: the Response
// struct and the Results/Plans slices are copied so independent callers
// can sort or truncate freely; Dist payloads stay shared (read-only).
func shareResponse(resp *core.Response) *core.Response {
	cp := *resp
	if resp.Results != nil {
		cp.Results = append([]core.Result(nil), resp.Results...)
	}
	if resp.Plans != nil {
		cp.Plans = append([]core.CostEstimate(nil), resp.Plans...)
	}
	if resp.Agg != nil {
		a := *resp.Agg
		cp.Agg = &a // PMF/Profile slices stay shared (read-only), like Dist
	}
	return &cp
}

// Stream answers one request as a result sequence, holding the
// dataset's read lock (and one admission slot) for the duration of the
// iteration — ingest on the same dataset waits until the stream is
// drained or abandoned. Streams bypass single-flight (each consumer
// drives its own iteration).
func (s *Service) Stream(ctx context.Context, name string, req core.Request) iter.Seq2[core.Result, error] {
	return func(yield func(core.Result, error) bool) {
		ds, err := s.dataset(name)
		if err != nil {
			yield(core.Result{}, err)
			return
		}
		req, err = ds.resolveRegion(req)
		if err != nil {
			yield(core.Result{}, err)
			return
		}
		s.requests.Add(1)
		ctx, cancel := s.withDeadline(ctx)
		defer cancel()
		release, err := s.admit(ctx)
		if err != nil {
			yield(core.Result{}, err)
			return
		}
		defer release()
		s.evaluations.Add(1)
		ds.mu.RLock()
		defer ds.mu.RUnlock()
		if testHookEvalStart != nil {
			testHookEvalStart()
		}
		for r, serr := range ds.engine.EvaluateSeq(ctx, req) {
			if !yield(r, serr) {
				return
			}
			if serr != nil {
				return
			}
		}
	}
}

// evaluateLocked runs one evaluation under the dataset's read lock
// without admission or coalescing — the subscription refresh path (its
// cost is already bounded by the score cache, and a standing query
// must not be starved by its own service's load).
func (s *Service) evaluateLocked(ctx context.Context, ds *dataset, req core.Request) (*core.Response, uint64, error) {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	resp, err := ds.engine.Evaluate(ctx, req)
	return resp, ds.db.Version(), err
}
