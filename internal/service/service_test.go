package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"ust/internal/core"
	"ust/internal/markov"
)

// paperDB builds the paper's running-example database: the 3-state
// chain and one object observed at s2 (PST∃Q over {s0,s1}×{2,3} is
// 0.864).
func paperDB(t testing.TB) *core.Database {
	t.Helper()
	chain, err := markov.FromDense([][]float64{
		{0, 0, 1},
		{0.6, 0, 0.4},
		{0, 0.8, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDatabase(chain)
	if err := db.AddSimple(1, markov.PointDistribution(3, 1)); err != nil {
		t.Fatal(err)
	}
	return db
}

// widerDB builds a database with several objects over the paper chain.
func widerDB(t testing.TB, objects int) *core.Database {
	t.Helper()
	db := paperDB(t)
	for id := 2; id < 2+objects-1; id++ {
		if err := db.AddSimple(id, markov.PointDistribution(3, id%3)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func existsReq() core.Request {
	return core.NewRequest(core.PredicateExists,
		core.WithStates([]int{0, 1}), core.WithTimes([]int{2, 3}))
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDatasetLifecycle(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	if err := svc.Create("a", paperDB(t), nil); err != nil {
		t.Fatal(err)
	}
	if err := svc.Create("a", paperDB(t), nil); !errors.Is(err, ErrDatasetExists) {
		t.Fatalf("duplicate create: %v", err)
	}

	// Round-trip dataset "a" through the binary store format into "b".
	var buf bytes.Buffer
	if err := svc.Save("a", &buf); err != nil {
		t.Fatal(err)
	}
	if err := svc.Load("b", &buf); err != nil {
		t.Fatal(err)
	}
	infos := svc.Datasets()
	if len(infos) != 2 || infos[0].Name != "a" || infos[1].Name != "b" {
		t.Fatalf("datasets: %+v", infos)
	}
	if infos[1].Objects != 1 || infos[1].States != 3 {
		t.Fatalf("loaded info: %+v", infos[1])
	}

	ra, err := svc.Evaluate(context.Background(), "a", existsReq())
	if err != nil {
		t.Fatal(err)
	}
	rb, err := svc.Evaluate(context.Background(), "b", existsReq())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra.Results, rb.Results) {
		t.Fatalf("loaded dataset answers differently: %+v vs %+v", ra.Results, rb.Results)
	}

	if err := svc.Drop("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Evaluate(context.Background(), "b", existsReq()); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("dropped dataset: %v", err)
	}
	if err := svc.Drop("b"); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("double drop: %v", err)
	}
}

func TestEvaluateMatchesEngine(t *testing.T) {
	db := widerDB(t, 6)
	svc := New(Config{})
	defer svc.Close()
	if err := svc.Create("d", db, nil); err != nil {
		t.Fatal(err)
	}
	direct := core.NewEngine(paperDBClone(t, 6), core.Options{})

	reqs := []core.Request{
		existsReq(),
		core.NewRequest(core.PredicateForAll, core.WithStates([]int{0, 1}), core.WithTimes([]int{2, 3})),
		core.NewRequest(core.PredicateKTimes, core.WithStates([]int{0, 1}), core.WithTimes([]int{2, 3})),
		core.NewRequest(core.PredicateEventually, core.WithStates([]int{0})),
		existsReq().With(core.WithStrategy(core.StrategyObjectBased)),
		existsReq().With(core.WithTopK(3)),
		existsReq().With(core.WithThreshold(0.5)),
	}
	for i, req := range reqs {
		want, err := direct.Evaluate(context.Background(), req)
		if err != nil {
			t.Fatalf("req %d direct: %v", i, err)
		}
		got, err := svc.Evaluate(context.Background(), "d", req)
		if err != nil {
			t.Fatalf("req %d service: %v", i, err)
		}
		if !reflect.DeepEqual(got.Results, want.Results) {
			t.Fatalf("req %d: service %+v, direct %+v", i, got.Results, want.Results)
		}
	}

	// Streaming matches batch order and content.
	var streamed []core.Result
	for r, err := range svc.Stream(context.Background(), "d", existsReq()) {
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, r)
	}
	batch, err := svc.Evaluate(context.Background(), "d", existsReq())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(streamed, batch.Results) {
		t.Fatalf("stream %+v != batch %+v", streamed, batch.Results)
	}
}

// paperDBClone builds the same database as widerDB (fresh copy).
func paperDBClone(t testing.TB, objects int) *core.Database {
	return widerDB(t, objects)
}

func TestSingleFlightCoalesces(t *testing.T) {
	const followers = 8
	svc := New(Config{})
	defer svc.Close()
	if err := svc.Create("d", widerDB(t, 16), nil); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var enterOnce sync.Once
	testHookEvalStart = func() {
		enterOnce.Do(func() { close(entered) })
		<-release
	}
	defer func() { testHookEvalStart = nil }()

	req := existsReq()
	type out struct {
		resp *core.Response
		err  error
	}
	results := make([]out, followers+1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := svc.Evaluate(context.Background(), "d", req)
		results[0] = out{resp, err}
	}()
	<-entered // the leader is inside the evaluation, holding the flight key

	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := svc.Evaluate(context.Background(), "d", req)
			results[i] = out{resp, err}
		}(i)
	}
	waitFor(t, "followers to coalesce", func() bool {
		return svc.Stats().Coalesced == followers
	})
	close(release)
	wg.Wait()

	st := svc.Stats()
	if st.Evaluations != 1 {
		t.Fatalf("evaluations = %d, want 1 (coalesced=%d)", st.Evaluations, st.Coalesced)
	}
	if st.Coalesced != followers {
		t.Fatalf("coalesced = %d, want %d", st.Coalesced, followers)
	}
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("caller %d: %v", i, r.err)
		}
		if !reflect.DeepEqual(r.resp.Results, results[0].resp.Results) {
			t.Fatalf("caller %d diverged: %+v vs %+v", i, r.resp.Results, results[0].resp.Results)
		}
	}

	// Each caller owns its Results slice: mutating one must not affect
	// another (coalesced responses are shared data underneath).
	results[1].resp.Results[0] = core.Result{ObjectID: -1}
	if results[2].resp.Results[0].ObjectID == -1 {
		t.Fatal("coalesced callers share a Results slice")
	}
}

func TestSingleFlightAbandonedByAllWaiters(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	if err := svc.Create("d", paperDB(t), nil); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var enterOnce sync.Once
	testHookEvalStart = func() {
		enterOnce.Do(func() { close(entered) })
		<-release
	}
	defer func() { testHookEvalStart = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := svc.Evaluate(ctx, "d", existsReq())
		done <- err
	}()
	<-entered
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned caller: %v", err)
	}
	close(release) // the detached evaluation finishes on its own
	waitFor(t, "in-flight drain", func() bool { return svc.Stats().InFlight == 0 })
}

func TestAdmissionRejectsWhenSaturated(t *testing.T) {
	svc := New(Config{MaxConcurrent: 1})
	defer svc.Close()
	if err := svc.Create("d", paperDB(t), nil); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var enterOnce sync.Once
	testHookEvalStart = func() {
		enterOnce.Do(func() { close(entered) })
		<-release
	}
	defer func() { testHookEvalStart = nil }()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := svc.Evaluate(context.Background(), "d", existsReq()); err != nil {
			t.Errorf("holder: %v", err)
		}
	}()
	<-entered // the only admission slot is now held

	// A different request (distinct flight key) cannot be admitted
	// before its deadline. The caller sees its own deadline expire (or
	// the admission failure, whichever its detached evaluation hits
	// first); either way the rejection is counted.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	other := existsReq().With(core.WithTimes([]int{4, 5}))
	if _, err := svc.Evaluate(ctx, "d", other); !errors.Is(err, ErrOverloaded) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("saturated evaluate: %v", err)
	}
	waitFor(t, "rejection to be counted", func() bool { return svc.Stats().Rejected == 1 })
	close(release)
	wg.Wait()
}

func TestDefaultDeadlineApplies(t *testing.T) {
	svc := New(Config{DefaultTimeout: 30 * time.Millisecond})
	defer svc.Close()
	if err := svc.Create("d", paperDB(t), nil); err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	testHookEvalStart = func() { <-block }
	defer func() {
		// Unblock the detached evaluation and wait for it to drain
		// before resetting the hook (the goroutine reads it).
		close(block)
		waitFor(t, "detached evaluation drain", func() bool { return svc.Stats().InFlight == 0 })
		testHookEvalStart = nil
	}()

	// The caller's context has no deadline; the service's default must
	// still bound the wait.
	start := time.Now()
	_, err := svc.Evaluate(context.Background(), "d", existsReq())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not bound the wait (%v)", elapsed)
	}
}

func TestIngestDuringQueries(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	if err := svc.Create("d", widerDB(t, 8), nil); err != nil {
		t.Fatal(err)
	}
	const (
		queriers = 4
		ingests  = 25
	)
	var wg sync.WaitGroup
	stopQuery := make(chan struct{})
	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stopQuery:
					return
				default:
				}
				req := existsReq()
				if g%2 == 0 {
					for r, err := range svc.Stream(context.Background(), "d", req) {
						if err != nil {
							t.Errorf("stream: %v", err)
							return
						}
						_ = r
					}
				} else if _, err := svc.Evaluate(context.Background(), "d", req); err != nil {
					t.Errorf("evaluate: %v", err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < ingests; i++ {
		id := 1000 + i
		o, err := core.NewObject(id, nil, core.Observation{Time: 0, PDF: markov.PointDistribution(3, i%3)})
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Track("d", o); err != nil {
			t.Fatal(err)
		}
		if err := svc.Observe("d", id, core.Observation{Time: 5, PDF: markov.PointDistribution(3, (i+1)%3)}); err != nil {
			t.Fatal(err)
		}
	}
	close(stopQuery)
	wg.Wait()

	info, err := svc.Info("d")
	if err != nil {
		t.Fatal(err)
	}
	if info.Objects != 8+ingests {
		t.Fatalf("objects = %d, want %d", info.Objects, 8+ingests)
	}
	if got := svc.Stats().Ingests; got != 2*ingests {
		t.Fatalf("ingests = %d, want %d", got, 2*ingests)
	}
}

func TestObserveValidation(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	if err := svc.Create("d", paperDB(t), nil); err != nil {
		t.Fatal(err)
	}
	if err := svc.Observe("d", 99, core.Observation{Time: 1, PDF: markov.PointDistribution(3, 0)}); err == nil {
		t.Fatal("unknown object accepted")
	}
	if err := svc.Observe("d", 1, core.Observation{Time: 1, PDF: markov.PointDistribution(5, 0)}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if err := svc.Observe("nope", 1, core.Observation{Time: 1, PDF: markov.PointDistribution(3, 0)}); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset: %v", err)
	}
}

func TestServiceClosed(t *testing.T) {
	svc := New(Config{})
	if err := svc.Create("d", paperDB(t), nil); err != nil {
		t.Fatal(err)
	}
	svc.Close()
	svc.Close() // idempotent
	if _, err := svc.Evaluate(context.Background(), "d", existsReq()); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed evaluate: %v", err)
	}
	if err := svc.Create("e", paperDB(t), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed create: %v", err)
	}
}

func TestFlightKeyDistinguishesRequestsAndVersions(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	if err := svc.Create("d", paperDB(t), nil); err != nil {
		t.Fatal(err)
	}
	ds, err := svc.dataset("d")
	if err != nil {
		t.Fatal(err)
	}
	k1, ok := svc.flightKey(ds, existsReq())
	if !ok {
		t.Fatal("no key for plain request")
	}
	k2, _ := svc.flightKey(ds, existsReq())
	if k1 != k2 {
		t.Fatal("identical requests got different keys")
	}
	k3, _ := svc.flightKey(ds, existsReq().With(core.WithTopK(2)))
	if k3 == k1 {
		t.Fatal("different requests share a key")
	}
	if err := svc.Observe("d", 1, core.Observation{Time: 4, PDF: markov.PointDistribution(3, 0)}); err != nil {
		t.Fatal(err)
	}
	k4, _ := svc.flightKey(ds, existsReq())
	if k4 == k1 {
		t.Fatal("key ignores the database version — coalescing could serve stale results")
	}
	_ = fmt.Sprintf("%s%s%s%s", k1, k2, k3, k4)
}
