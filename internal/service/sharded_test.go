package service

import (
	"context"
	"reflect"
	"testing"

	"ust/internal/core"
	"ust/internal/markov"
)

// TestShardedServiceEndToEnd wires Config.Shards through the service
// layer: evaluation and streaming answer byte-identically to a single
// engine, ingest through Observe/Track reaches the owning shard (the
// router resyncs lazily on the next evaluation), subscriptions refresh
// through the sharded backend, and Engine() refuses to pretend a
// sharded dataset has a single engine.
func TestShardedServiceEndToEnd(t *testing.T) {
	db := widerDB(t, 12)
	s := New(Config{Shards: 3})
	defer s.Close()
	if err := s.Create("d", db, nil); err != nil {
		t.Fatal(err)
	}
	single := core.NewEngine(widerDB(t, 12), core.Options{})
	ctx := context.Background()

	want, err := single.Evaluate(ctx, existsReq())
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Evaluate(ctx, "d", existsReq())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatalf("sharded service diverged:\n  got  %+v\n  want %+v", got.Results, want.Results)
	}

	var streamed []core.Result
	for r, serr := range s.Stream(ctx, "d", existsReq()) {
		if serr != nil {
			t.Fatal(serr)
		}
		streamed = append(streamed, r)
	}
	if !reflect.DeepEqual(streamed, want.Results) {
		t.Fatalf("sharded stream diverged:\n  got  %+v\n  want %+v", streamed, want.Results)
	}

	if _, err := s.Engine("d"); err == nil {
		t.Fatal("Engine() returned a single engine for a sharded dataset")
	}

	// A standing query must see ingest through the sharded backend.
	sub, err := s.Subscribe(ctx, "d", existsReq())
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	first := <-sub.Updates()
	if !first.Full || len(first.Results) != len(want.Results) {
		t.Fatalf("snapshot: %+v", first)
	}
	if err := s.Observe("d", 1, core.Observation{Time: 1, PDF: markov.PointDistribution(3, 2)}); err != nil {
		t.Fatal(err)
	}
	up := <-sub.Updates()
	fresh, err := s.Evaluate(ctx, "d", existsReq())
	if err != nil {
		t.Fatal(err)
	}
	state := map[int]core.Result{}
	for _, r := range first.Results {
		state[r.ObjectID] = r
	}
	for _, r := range up.Results {
		state[r.ObjectID] = r
	}
	for _, id := range up.Removed {
		delete(state, id)
	}
	for _, r := range fresh.Results {
		if !reflect.DeepEqual(state[r.ObjectID], r) {
			t.Fatalf("subscription state stale for object %d: %+v vs %+v", r.ObjectID, state[r.ObjectID], r)
		}
	}

	// Track a new object; the next evaluation must include it.
	o, err := core.NewObject(500, nil, core.Observation{Time: 0, PDF: markov.PointDistribution(3, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Track("d", o); err != nil {
		t.Fatal(err)
	}
	after, err := s.Evaluate(ctx, "d", existsReq())
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Results) != len(want.Results)+1 {
		t.Fatalf("tracked object missing: %d results, want %d", len(after.Results), len(want.Results)+1)
	}
}
