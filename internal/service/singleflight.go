package service

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"ust/internal/core"
)

// Single-flight coalescing of identical in-flight evaluations. Unlike
// the classic singleflight (where the first caller's goroutine runs the
// function and its cancellation kills every follower), the evaluation
// here runs on its own goroutine under a context detached from any one
// caller: a waiter that gives up stops waiting without aborting the
// others, and the shared evaluation is cancelled only when the last
// waiter has left. That makes coalescing safe to apply to requests with
// heterogeneous deadlines.

// flightCall is one in-flight evaluation with its waiter registry.
type flightCall struct {
	done    chan struct{}
	resp    *core.Response
	err     error
	waiters int
	cancel  context.CancelFunc
}

// flightGroup indexes in-flight evaluations by request key. coalesced
// counts joins (incremented at join time, so saturation is observable
// while the shared evaluation is still running).
type flightGroup struct {
	mu        sync.Mutex
	calls     map[string]*flightCall
	coalesced *atomic.Uint64
}

// do returns the response of the evaluation identified by key, starting
// it when absent. timeout, when positive, bounds the detached
// evaluation itself — the callers' own deadlines only bound their
// waiting.
func (g *flightGroup) do(ctx context.Context, key string, timeout time.Duration,
	fn func(context.Context) (*core.Response, error)) (resp *core.Response, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		if g.coalesced != nil {
			g.coalesced.Add(1)
		}
		return g.wait(ctx, key, c)
	}
	evalCtx := context.WithoutCancel(ctx)
	var cancel context.CancelFunc
	if timeout > 0 {
		evalCtx, cancel = context.WithTimeout(evalCtx, timeout)
	} else {
		evalCtx, cancel = context.WithCancel(evalCtx)
	}
	c := &flightCall{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.calls[key] = c
	g.mu.Unlock()

	go func() {
		defer cancel()
		c.resp, c.err = fn(evalCtx)
		g.mu.Lock()
		if g.calls[key] == c {
			delete(g.calls, key)
		}
		g.mu.Unlock()
		close(c.done)
	}()

	return g.wait(ctx, key, c)
}

// wait blocks until the call completes or the caller's context expires.
// The last waiter to leave cancels the detached evaluation AND forgets
// the key immediately (not when fn eventually returns): a later caller
// with a live context must start a fresh evaluation, never inherit the
// cancellation error of a call everyone abandoned.
func (g *flightGroup) wait(ctx context.Context, key string, c *flightCall) (*core.Response, error) {
	select {
	case <-c.done:
		return c.resp, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		abandoned := c.waiters == 0
		if abandoned && g.calls[key] == c {
			delete(g.calls, key)
		}
		g.mu.Unlock()
		if abandoned {
			c.cancel()
		}
		return nil, ctx.Err()
	}
}
