package service

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"ust/internal/core"
)

// Update is one incremental refresh of a standing query: the results
// that are new or changed since the previous update, plus the object
// ids that stopped qualifying (relevant under WithThreshold/WithTopK).
// The first update of a subscription has Full set and carries the
// complete result set. Applying a subscription's updates in sequence
// reproduces, at every step, exactly what a fresh Evaluate of the same
// request would return at that database version.
type Update struct {
	// Seq numbers updates from 1 within a subscription.
	Seq uint64
	// Version is the database generation the results reflect.
	Version uint64
	// Full marks a complete snapshot (always true for the first update).
	Full bool
	// Results are the new-or-changed per-object results, in evaluation
	// order (full result set when Full).
	Results []core.Result
	// Removed lists object ids that appeared in the previous state but
	// no longer qualify.
	Removed []int
}

// Subscription is a standing query over one dataset: updates arrive on
// Updates() as observations are ingested. It generalizes the classic
// Monitor from a pull-based, exists-only, single-goroutine helper to a
// push API covering every predicate, strategy and ranking a Request can
// express; like Monitor, refreshes ride the engine's shared score cache
// so only per-object work is recomputed.
type Subscription struct {
	svc *Service
	ds  *dataset
	req core.Request

	updates chan Update
	dirty   chan struct{}
	stop    chan struct{}
	once    sync.Once

	mu  sync.Mutex
	err error
}

// Subscribe registers a standing query against the named dataset. The
// first update (the full current result set) is computed synchronously
// before Subscribe returns, so a successful Subscribe is immediately
// consistent; it is delivered as the first element on Updates().
// Updates stop — and Updates() is closed — when ctx is cancelled, Close
// is called, the dataset is dropped, or a refresh fails (see Err).
//
// Delivery applies backpressure: a consumer that stops draining
// Updates() blocks further refreshes of its own subscription but never
// blocks ingest or other subscribers.
func (s *Service) Subscribe(ctx context.Context, name string, req core.Request) (*Subscription, error) {
	ds, err := s.dataset(name)
	if err != nil {
		return nil, err
	}
	req, err = ds.resolveRegion(req)
	if err != nil {
		return nil, err
	}
	if _, isAgg := req.AggregateHint(); isAgg {
		// Updates carry per-object result deltas; a count distribution
		// has no incremental form. Poll Evaluate instead.
		return nil, fmt.Errorf("service: aggregate requests have no subscription form: %w", core.ErrAggregateStream)
	}
	sub := &Subscription{
		svc:     s,
		ds:      ds,
		req:     req,
		updates: make(chan Update, 1),
		dirty:   make(chan struct{}, 1),
		stop:    make(chan struct{}),
	}
	// Register BEFORE the snapshot evaluation: an ingest landing between
	// the snapshot and registration would otherwise notify nobody and
	// the subscriber would silently miss that generation. Registering
	// first means such an ingest sets the dirty flag and the refresh
	// loop reconciles (a refresh that observes the snapshot's version is
	// a no-op). The closed check covers the racing Drop/Close window —
	// without it a subscription could be added to an already-swept map
	// and hang forever.
	ds.subMu.Lock()
	if ds.subsClosed {
		err := ds.subsErr
		ds.subMu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	ds.subs[sub] = struct{}{}
	ds.subMu.Unlock()
	s.subs.Add(1)

	deregister := func() {
		ds.subMu.Lock()
		delete(ds.subs, sub)
		ds.subMu.Unlock()
		s.subs.Add(-1)
	}
	resp, version, err := s.evaluateLocked(ctx, ds, req)
	if err != nil {
		deregister()
		return nil, err
	}
	first := Update{Seq: 1, Version: version, Full: true, Results: resp.Results}
	if first.Results == nil {
		first.Results = []core.Result{}
	}
	sub.updates <- first
	s.updates.Add(1)

	go sub.run(ctx, resultMap(resp.Results), version)
	return sub, nil
}

// Updates delivers the subscription's refreshes, starting with the full
// snapshot. The channel is closed when the subscription ends.
func (sub *Subscription) Updates() <-chan Update { return sub.updates }

// Request returns the standing request.
func (sub *Subscription) Request() core.Request { return sub.req }

// Err reports why the subscription ended: nil after a clean Close or
// context cancellation, the refresh error otherwise.
func (sub *Subscription) Err() error {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.err
}

// Close terminates the subscription. Safe to call multiple times and
// concurrently with delivery.
func (sub *Subscription) Close() { sub.close(nil) }

func (sub *Subscription) close(err error) {
	sub.once.Do(func() {
		sub.mu.Lock()
		sub.err = err
		sub.mu.Unlock()
		close(sub.stop)
	})
}

// run is the refresh loop: wait for an ingest signal, re-evaluate, diff
// against the previous state, deliver. One signal may batch several
// ingests — the refresh always reflects the newest state, never an
// intermediate one it missed.
func (sub *Subscription) run(ctx context.Context, last map[int]core.Result, version uint64) {
	defer func() {
		sub.ds.subMu.Lock()
		delete(sub.ds.subs, sub)
		sub.ds.subMu.Unlock()
		sub.svc.subs.Add(-1)
		close(sub.updates)
	}()
	seq := uint64(1)
	for {
		select {
		case <-sub.stop:
			return
		case <-ctx.Done():
			return
		case <-sub.dirty:
		}
		resp, newVersion, err := sub.svc.evaluateLocked(ctx, sub.ds, sub.req)
		if err != nil {
			if ctx.Err() == nil {
				sub.close(err)
			}
			return
		}
		if newVersion == version {
			continue
		}
		changed, removed := diffResults(last, resp.Results)
		version = newVersion
		last = resultMap(resp.Results)
		if len(changed) == 0 && len(removed) == 0 {
			continue
		}
		seq++
		up := Update{Seq: seq, Version: newVersion, Results: changed, Removed: removed}
		select {
		case sub.updates <- up:
			sub.svc.updates.Add(1)
		case <-sub.stop:
			return
		case <-ctx.Done():
			return
		}
	}
}

// notify marks the subscription dirty (coalescing repeated signals).
func (sub *Subscription) notify() {
	select {
	case sub.dirty <- struct{}{}:
	default:
	}
}

// notifySubs signals every subscription of the dataset after an ingest.
func (ds *dataset) notifySubs() {
	ds.subMu.Lock()
	subs := make([]*Subscription, 0, len(ds.subs))
	for sub := range ds.subs {
		subs = append(subs, sub)
	}
	ds.subMu.Unlock()
	for _, sub := range subs {
		sub.notify()
	}
}

// closeSubs force-terminates every subscription (dataset drop, service
// shutdown) and rejects future registrations with the same reason.
func (ds *dataset) closeSubs(err error) {
	ds.subMu.Lock()
	ds.subsClosed = true
	ds.subsErr = err
	subs := make([]*Subscription, 0, len(ds.subs))
	for sub := range ds.subs {
		subs = append(subs, sub)
	}
	ds.subMu.Unlock()
	for _, sub := range subs {
		sub.close(err)
	}
}

func resultMap(rs []core.Result) map[int]core.Result {
	m := make(map[int]core.Result, len(rs))
	for _, r := range rs {
		m[r.ObjectID] = r
	}
	return m
}

// diffResults splits a fresh result set against the previous state into
// changed-or-new results (fresh evaluation order) and disappeared ids
// (ascending).
func diffResults(last map[int]core.Result, fresh []core.Result) (changed []core.Result, removed []int) {
	seen := make(map[int]struct{}, len(fresh))
	for _, r := range fresh {
		seen[r.ObjectID] = struct{}{}
		prev, ok := last[r.ObjectID]
		if !ok || prev.Prob != r.Prob || !slices.Equal(prev.Dist, r.Dist) {
			changed = append(changed, r)
		}
	}
	for id := range last {
		if _, ok := seen[id]; !ok {
			removed = append(removed, id)
		}
	}
	slices.Sort(removed)
	return changed, removed
}
