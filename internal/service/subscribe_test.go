package service

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"ust/internal/core"
	"ust/internal/markov"
)

// applyUpdate folds one update into the accumulated subscription state.
func applyUpdate(state map[int]core.Result, up Update) {
	if up.Full {
		for id := range state {
			delete(state, id)
		}
	}
	for _, r := range up.Results {
		state[r.ObjectID] = r
	}
	for _, id := range up.Removed {
		delete(state, id)
	}
}

// recvUpdate reads one update with a timeout.
func recvUpdate(t *testing.T, sub *Subscription) Update {
	t.Helper()
	select {
	case up, ok := <-sub.Updates():
		if !ok {
			t.Fatalf("updates channel closed early (err: %v)", sub.Err())
		}
		return up
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for an update")
	}
	panic("unreachable")
}

// assertState compares the accumulated subscription state against a
// fresh evaluation of the same request — the pinning invariant.
func assertState(t *testing.T, svc *Service, dataset string, req core.Request, state map[int]core.Result) {
	t.Helper()
	resp, err := svc.Evaluate(context.Background(), dataset, req)
	if err != nil {
		t.Fatal(err)
	}
	want := resultMap(resp.Results)
	if !reflect.DeepEqual(state, want) {
		t.Fatalf("subscription state diverged from fresh evaluation:\n  sub   %+v\n  fresh %+v", state, want)
	}
}

func TestSubscribeInitialAndIncremental(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	if err := svc.Create("d", widerDB(t, 4), nil); err != nil {
		t.Fatal(err)
	}
	req := existsReq()
	sub, err := svc.Subscribe(context.Background(), "d", req)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	state := map[int]core.Result{}
	first := recvUpdate(t, sub)
	if !first.Full || first.Seq != 1 {
		t.Fatalf("first update not a full snapshot: %+v", first)
	}
	applyUpdate(state, first)
	assertState(t, svc, "d", req, state)

	// A new observation for object 1 changes its probability; the
	// subscription must deliver exactly the fresh-evaluation delta.
	if err := svc.Observe("d", 1, core.Observation{Time: 1, PDF: markov.PointDistribution(3, 2)}); err != nil {
		t.Fatal(err)
	}
	up := recvUpdate(t, sub)
	if up.Full {
		t.Fatalf("incremental update flagged full: %+v", up)
	}
	applyUpdate(state, up)
	assertState(t, svc, "d", req, state)

	// A brand-new tracked object must show up.
	o, err := core.NewObject(77, nil, core.Observation{Time: 0, PDF: markov.PointDistribution(3, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Track("d", o); err != nil {
		t.Fatal(err)
	}
	up = recvUpdate(t, sub)
	applyUpdate(state, up)
	assertState(t, svc, "d", req, state)
	if _, ok := state[77]; !ok {
		t.Fatal("tracked object missing from subscription state")
	}

	// The accumulated state must also match a fresh Monitor over the
	// same window — the classic pull API and the push API are pinned to
	// each other.
	eng, err := svc.Engine("d")
	if err != nil {
		t.Fatal(err)
	}
	mon := eng.NewMonitor(core.NewQuery([]int{0, 1}, []int{2, 3}))
	monResults, err := mon.Results()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(state, resultMap(monResults)) {
		t.Fatalf("subscription state diverged from Monitor:\n  sub     %+v\n  monitor %+v", state, resultMap(monResults))
	}
}

func TestSubscribeThresholdRemoval(t *testing.T) {
	// Symmetric 2-state chain: an object observed at s0 has P=0.5 of
	// being at s0 at t=1. A later observation pinning it to s1 at t=1
	// drives that to 0 — below the threshold, so the subscription must
	// retract it.
	chain, err := markov.FromDense([][]float64{
		{0.5, 0.5},
		{0.5, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDatabase(chain)
	if err := db.AddSimple(1, markov.PointDistribution(2, 0)); err != nil {
		t.Fatal(err)
	}
	svc := New(Config{})
	defer svc.Close()
	if err := svc.Create("d", db, nil); err != nil {
		t.Fatal(err)
	}
	req := core.NewRequest(core.PredicateExists,
		core.WithStates([]int{0}), core.WithTimes([]int{1}), core.WithThreshold(0.4))
	sub, err := svc.Subscribe(context.Background(), "d", req)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	state := map[int]core.Result{}
	first := recvUpdate(t, sub)
	applyUpdate(state, first)
	if len(state) != 1 || state[1].Prob != 0.5 {
		t.Fatalf("initial state: %+v", state)
	}

	if err := svc.Observe("d", 1, core.Observation{Time: 1, PDF: markov.PointDistribution(2, 1)}); err != nil {
		t.Fatal(err)
	}
	up := recvUpdate(t, sub)
	if len(up.Removed) != 1 || up.Removed[0] != 1 {
		t.Fatalf("expected object 1 retracted, got %+v", up)
	}
	applyUpdate(state, up)
	assertState(t, svc, "d", req, state)
	if len(state) != 0 {
		t.Fatalf("state should be empty after retraction: %+v", state)
	}
}

func TestSubscribeBatchedIngest(t *testing.T) {
	// Several ingests may coalesce into fewer updates; the invariant is
	// that after quiescing, the accumulated state equals a fresh
	// evaluation.
	svc := New(Config{})
	defer svc.Close()
	if err := svc.Create("d", widerDB(t, 3), nil); err != nil {
		t.Fatal(err)
	}
	req := existsReq()
	sub, err := svc.Subscribe(context.Background(), "d", req)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	state := map[int]core.Result{}
	applyUpdate(state, recvUpdate(t, sub))

	for i := 0; i < 10; i++ {
		o, oerr := core.NewObject(100+i, nil, core.Observation{Time: 0, PDF: markov.PointDistribution(3, i%3)})
		if oerr != nil {
			t.Fatal(oerr)
		}
		if err := svc.Track("d", o); err != nil {
			t.Fatal(err)
		}
	}
	final, err := svc.Evaluate(context.Background(), "d", req)
	if err != nil {
		t.Fatal(err)
	}
	want := resultMap(final.Results)
	deadline := time.Now().Add(5 * time.Second)
	for !reflect.DeepEqual(state, want) {
		if time.Now().After(deadline) {
			t.Fatalf("state never converged:\n  sub   %+v\n  fresh %+v", state, want)
		}
		select {
		case up, ok := <-sub.Updates():
			if !ok {
				t.Fatalf("updates closed early: %v", sub.Err())
			}
			applyUpdate(state, up)
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func TestSubscribeCloseAndCancel(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	if err := svc.Create("d", paperDB(t), nil); err != nil {
		t.Fatal(err)
	}

	sub, err := svc.Subscribe(context.Background(), "d", existsReq())
	if err != nil {
		t.Fatal(err)
	}
	recvUpdate(t, sub)
	sub.Close()
	waitFor(t, "channel close after Close", func() bool {
		select {
		case _, ok := <-sub.Updates():
			return !ok
		default:
			return false
		}
	})
	if sub.Err() != nil {
		t.Fatalf("clean close reported error: %v", sub.Err())
	}

	ctx, cancel := context.WithCancel(context.Background())
	sub2, err := svc.Subscribe(ctx, "d", existsReq())
	if err != nil {
		t.Fatal(err)
	}
	recvUpdate(t, sub2)
	cancel()
	waitFor(t, "channel close after cancel", func() bool {
		select {
		case _, ok := <-sub2.Updates():
			return !ok
		default:
			return false
		}
	})
	waitFor(t, "subscription gauge drain", func() bool { return svc.Stats().Subscriptions == 0 })
}

func TestSubscribeDatasetDrop(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	if err := svc.Create("d", paperDB(t), nil); err != nil {
		t.Fatal(err)
	}
	sub, err := svc.Subscribe(context.Background(), "d", existsReq())
	if err != nil {
		t.Fatal(err)
	}
	recvUpdate(t, sub)
	if err := svc.Drop("d"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "channel close after drop", func() bool {
		select {
		case _, ok := <-sub.Updates():
			return !ok
		default:
			return false
		}
	})
	if !errors.Is(sub.Err(), ErrUnknownDataset) {
		t.Fatalf("drop reason: %v", sub.Err())
	}
}

func TestSubscribeUnknownDataset(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	if _, err := svc.Subscribe(context.Background(), "nope", existsReq()); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("subscribe to unknown dataset: %v", err)
	}
}
