package service

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ust/internal/core"
)

// SweepBoard is the coordinator side of the networked sweep tier: the
// score cache's per-key single-flight lock generalized to a fleet. Each
// key is either FILLED (a worker published the payload; everyone adopts
// it) or LEASED (exactly one worker holds the computation right; the
// rest long-poll). Leases expire, so a worker that dies mid-sweep stalls
// waiters for at most the TTL before one of them takes over — the tier
// degrades, it never wedges.
//
// Filled payloads live in an LRU bounded by a byte budget. Evicting a
// payload forgets the key entirely; the next Acquire re-leases it and
// the fleet recomputes, which is exactly the score cache's own eviction
// semantics one level up.
type SweepBoard struct {
	mu       sync.Mutex
	entries  map[core.SweepKey]*boardEntry
	lru      *list.List // filled entries, most recent at front
	bytes    int
	maxBytes int
	ttl      time.Duration
	leaseSeq uint64

	// counters, snapshotted by Stats for tests and /metrics.
	leases    uint64
	fills     uint64
	served    uint64
	takeovers uint64
}

type boardEntry struct {
	key     core.SweepKey
	payload []byte // non-nil once filled
	lease   string // non-empty while leased
	expires time.Time
	// wake is closed when the entry's state changes (fill, release,
	// expiry takeover) and replaced with a fresh channel on re-lease, so
	// long-polling waiters block on exactly one state transition.
	wake chan struct{}
	el   *list.Element // LRU position once filled
}

// ErrStaleLease rejects a Fill or Release under a token that is not the
// key's current lease — the board expired it and granted a takeover, so
// the late worker's payload is dropped (the takeover's fill wins).
var ErrStaleLease = errors.New("service: stale sweep lease")

const (
	defaultSweepTTL   = 10 * time.Second
	defaultSweepBytes = 64 << 20
)

// NewSweepBoard builds a board with the given lease TTL and payload byte
// budget; zero or negative values select the defaults (10s, 64 MiB).
func NewSweepBoard(ttl time.Duration, maxBytes int) *SweepBoard {
	if ttl <= 0 {
		ttl = defaultSweepTTL
	}
	if maxBytes <= 0 {
		maxBytes = defaultSweepBytes
	}
	return &SweepBoard{
		entries:  make(map[core.SweepKey]*boardEntry),
		lru:      list.New(),
		maxBytes: maxBytes,
		ttl:      ttl,
	}
}

// Acquire implements core.SweepTier. It returns the payload when the
// sweep is already filled, a lease token when the caller should compute,
// and blocks (until ctx ends) while another worker holds the lease.
func (b *SweepBoard) Acquire(ctx context.Context, key core.SweepKey) ([]byte, string, error) {
	for {
		b.mu.Lock()
		e := b.entries[key]
		if e == nil {
			e = &boardEntry{key: key, wake: make(chan struct{})}
			b.entries[key] = e
		}
		if e.payload != nil {
			b.lru.MoveToFront(e.el)
			b.served++
			payload := e.payload
			b.mu.Unlock()
			return payload, "", nil
		}
		now := time.Now()
		if e.lease == "" || now.After(e.expires) {
			if e.lease != "" {
				// Expired holder: wake its waiters onto the new grant.
				b.takeovers++
				close(e.wake)
				e.wake = make(chan struct{})
			}
			b.leaseSeq++
			e.lease = fmt.Sprintf("L%d", b.leaseSeq)
			e.expires = now.Add(b.ttl)
			b.leases++
			lease := e.lease
			b.mu.Unlock()
			return nil, lease, nil
		}
		wake := e.wake
		wait := time.Until(e.expires)
		b.mu.Unlock()

		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, "", ctx.Err()
		case <-wake:
			timer.Stop()
		case <-timer.C:
			// Lease expired with no fill: loop and take over.
		}
	}
}

// Fill implements core.SweepTier: publish the payload computed under a
// held lease and wake every waiter.
func (b *SweepBoard) Fill(_ context.Context, key core.SweepKey, lease string, payload []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil || e.payload != nil || e.lease != lease {
		return ErrStaleLease
	}
	e.payload = payload
	e.lease = ""
	e.el = b.lru.PushFront(e)
	b.bytes += len(payload)
	b.fills++
	close(e.wake)
	for b.bytes > b.maxBytes && b.lru.Len() > 1 {
		old := b.lru.Back()
		ev := old.Value.(*boardEntry)
		b.lru.Remove(old)
		b.bytes -= len(ev.payload)
		delete(b.entries, ev.key)
	}
	return nil
}

// Release implements core.SweepTier: abandon a held lease so a waiter
// takes over immediately instead of waiting out the TTL.
func (b *SweepBoard) Release(_ context.Context, key core.SweepKey, lease string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[key]
	if e == nil || e.payload != nil || e.lease != lease {
		return
	}
	e.lease = ""
	e.expires = time.Time{}
	close(e.wake)
	e.wake = make(chan struct{})
}

// SweepBoardStats is a snapshot of the board's counters.
type SweepBoardStats struct {
	// Leases counts granted computation rights; Fills the payloads
	// published; Served the Acquires answered from a filled payload;
	// Takeovers the leases re-granted after their holder expired.
	Leases, Fills, Served, Takeovers uint64
	// Entries and Bytes describe the filled-payload LRU.
	Entries, Bytes int
}

// Stats snapshots the board's counters.
func (b *SweepBoard) Stats() SweepBoardStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return SweepBoardStats{
		Leases: b.leases, Fills: b.fills, Served: b.served, Takeovers: b.takeovers,
		Entries: b.lru.Len(), Bytes: b.bytes,
	}
}
