package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"ust/internal/core"
)

func boardKey(n uint64) core.SweepKey {
	return core.SweepKey{Chain: 0xabc, Kind: 1, Sig: n, T0: 7}
}

// TestSweepBoardAcquireFillAdopt walks the happy path: the first
// Acquire gets a lease (compute right), Fill publishes the payload, and
// every later Acquire adopts it without a lease.
func TestSweepBoardAcquireFillAdopt(t *testing.T) {
	b := NewSweepBoard(0, 0)
	ctx := context.Background()
	key := boardKey(1)

	payload, lease, err := b.Acquire(ctx, key)
	if err != nil || payload != nil || lease == "" {
		t.Fatalf("first acquire: payload=%v lease=%q err=%v", payload, lease, err)
	}
	want := []byte{0x75, 1, 2, 3}
	if err := b.Fill(ctx, key, lease, want); err != nil {
		t.Fatal(err)
	}
	payload, lease, err = b.Acquire(ctx, key)
	if err != nil || lease != "" {
		t.Fatalf("second acquire: lease=%q err=%v", lease, err)
	}
	if string(payload) != string(want) {
		t.Fatalf("adopted payload %v, want %v", payload, want)
	}
	st := b.Stats()
	if st.Leases != 1 || st.Fills != 1 || st.Served != 1 || st.Entries != 1 || st.Bytes != len(want) {
		t.Fatalf("stats %+v", st)
	}
}

// TestSweepBoardExpiryTakeover pins the liveness guarantee: a holder
// that dies mid-sweep stalls waiters for at most the TTL, after which
// one of them is granted a fresh lease — and the dead holder's late
// Fill is rejected as stale.
func TestSweepBoardExpiryTakeover(t *testing.T) {
	b := NewSweepBoard(50*time.Millisecond, 0)
	ctx := context.Background()
	key := boardKey(2)

	_, dead, err := b.Acquire(ctx, key)
	if err != nil || dead == "" {
		t.Fatalf("first acquire: lease=%q err=%v", dead, err)
	}
	// The holder never fills. The next Acquire must take over within the
	// TTL rather than hang.
	start := time.Now()
	payload, takeover, err := b.Acquire(ctx, key)
	if err != nil || payload != nil || takeover == "" || takeover == dead {
		t.Fatalf("takeover acquire: payload=%v lease=%q err=%v", payload, takeover, err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("takeover stalled %v, want ~TTL", waited)
	}
	if err := b.Fill(ctx, key, dead, []byte("late")); !errors.Is(err, ErrStaleLease) {
		t.Fatalf("late fill under expired lease: %v, want ErrStaleLease", err)
	}
	if err := b.Fill(ctx, key, takeover, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.Takeovers == 0 {
		t.Fatalf("stats %+v: expected a takeover", st)
	}
}

// TestSweepBoardReleaseWakesWaiter pins the fast abandon path: Release
// hands the lease to a blocked waiter immediately instead of letting it
// wait out the TTL.
func TestSweepBoardReleaseWakesWaiter(t *testing.T) {
	b := NewSweepBoard(time.Minute, 0) // TTL long enough that expiry can't rescue the test
	ctx := context.Background()
	key := boardKey(3)

	_, lease, err := b.Acquire(ctx, key)
	if err != nil || lease == "" {
		t.Fatalf("acquire: lease=%q err=%v", lease, err)
	}
	type grant struct {
		lease string
		err   error
	}
	got := make(chan grant, 1)
	go func() {
		_, l, err := b.Acquire(ctx, key)
		got <- grant{l, err}
	}()
	// Give the waiter a moment to block, then abandon.
	time.Sleep(20 * time.Millisecond)
	b.Release(ctx, key, lease)
	select {
	case g := <-got:
		if g.err != nil || g.lease == "" || g.lease == lease {
			t.Fatalf("waiter got lease=%q err=%v", g.lease, g.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not woken by Release")
	}
}

// TestSweepBoardEviction pins the byte budget: filled payloads beyond
// maxBytes fall off the LRU tail, the key is forgotten entirely, and
// the next Acquire re-leases it for recomputation.
func TestSweepBoardEviction(t *testing.T) {
	b := NewSweepBoard(0, 100)
	ctx := context.Background()
	payload := make([]byte, 40)

	for n := uint64(0); n < 4; n++ {
		_, lease, err := b.Acquire(ctx, boardKey(n))
		if err != nil || lease == "" {
			t.Fatalf("acquire %d: lease=%q err=%v", n, lease, err)
		}
		if err := b.Fill(ctx, boardKey(n), lease, payload); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Stats()
	if st.Bytes > 100 {
		t.Fatalf("budget exceeded: %+v", st)
	}
	if st.Entries != 2 {
		t.Fatalf("stats %+v: want 2 surviving entries under a 100-byte budget", st)
	}
	// The oldest key was evicted; acquiring it again grants a lease.
	p, lease, err := b.Acquire(ctx, boardKey(0))
	if err != nil || p != nil || lease == "" {
		t.Fatalf("post-eviction acquire: payload=%v lease=%q err=%v", p, lease, err)
	}
	// The most recent key still serves its payload.
	p, lease, err = b.Acquire(ctx, boardKey(3))
	if err != nil || lease != "" || len(p) != len(payload) {
		t.Fatalf("surviving key: payload=%d bytes lease=%q err=%v", len(p), lease, err)
	}
}
