package service

import (
	"bufio"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ust/internal/core"
	"ust/internal/markov"
	"ust/internal/wire"
	"ust/query"
)

// The acceptance path for the text query language: the SAME query
// string must be accepted by the HTTP /v1/query envelope, by
// Service.Subscribe (via query.Parse), and must produce results
// identical to the structured wire form of the same request.

const compoundText = "exists(states(0) @ [2,3]) and not forall(states(1,2) @ [1,2])"

func textTestService(t *testing.T) *Service {
	t.Helper()
	svc := New(Config{})
	t.Cleanup(svc.Close)
	if err := svc.Create("d", paperDB(t), nil); err != nil {
		t.Fatal(err)
	}
	return svc
}

func TestTextQueryOverHTTP(t *testing.T) {
	svc := textTestService(t)
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	// Text envelope.
	body := `{"dataset":"d","query":"` + compoundText + `"}`
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text query: status %d", resp.StatusCode)
	}
	var textResp wire.Response
	if err := json.NewDecoder(resp.Body).Decode(&textResp); err != nil {
		t.Fatal(err)
	}

	// The equivalent structured envelope.
	req, err := query.Parse(compoundText)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := wire.FromRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	env, err := json.Marshal(wire.QueryEnvelope{Dataset: "d", Request: &wr})
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(string(env)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var structResp wire.Response
	if err := json.NewDecoder(resp2.Body).Decode(&structResp); err != nil {
		t.Fatal(err)
	}

	if len(textResp.Results) == 0 || len(textResp.Results) != len(structResp.Results) {
		t.Fatalf("results differ: text %d, structured %d", len(textResp.Results), len(structResp.Results))
	}
	for i := range textResp.Results {
		if textResp.Results[i].Object != structResp.Results[i].Object ||
			textResp.Results[i].Prob != structResp.Results[i].Prob {
			t.Fatalf("result %d differs: %+v vs %+v", i, textResp.Results[i], structResp.Results[i])
		}
	}

	// Bad text queries are 400s, not 500s.
	for _, bad := range []string{
		`{"dataset":"d","query":"exsts(states(1) @ [1,2])"}`,
		`{"dataset":"d"}`,
		`{"dataset":"d","query":"exists(states(0) @ [1,2])","request":{"predicate":"exists"}}`,
	} {
		r, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("bad envelope %s: status %d, want 400", bad, r.StatusCode)
		}
	}
}

func TestTextQuerySubscribe(t *testing.T) {
	svc := textTestService(t)

	// In-process: Service.Subscribe accepts the parsed text query.
	req, err := query.Parse(compoundText)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := svc.Subscribe(context.Background(), "d", req)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	first := <-sub.Updates()
	if !first.Full {
		t.Fatal("first update not a full snapshot")
	}
	fresh, err := svc.Evaluate(context.Background(), "d", req)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Results) != len(fresh.Results) {
		t.Fatalf("snapshot %d results, fresh %d", len(first.Results), len(fresh.Results))
	}
	for i := range fresh.Results {
		if math.Abs(first.Results[i].Prob-fresh.Results[i].Prob) != 0 {
			t.Fatalf("snapshot result %d differs", i)
		}
	}

	// Over HTTP: the subscribe endpoint takes the same text envelope and
	// pushes the snapshot as its first NDJSON line.
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	body := `{"dataset":"d","query":"` + compoundText + `"}`
	httpReq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/subscribe", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe: status %d", resp.StatusCode)
	}
	line, err := bufio.NewReader(resp.Body).ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var up wire.Update
	if err := json.Unmarshal(line, &up); err != nil {
		t.Fatalf("bad first update line %q: %v", line, err)
	}
	if !up.Full || len(up.Results) != len(fresh.Results) {
		t.Fatalf("HTTP snapshot: full=%v results=%d want %d", up.Full, len(up.Results), len(fresh.Results))
	}
}

// TestCompoundCoalescing pins that single-flight keying works unchanged
// for compound queries: the expression round-trips through the wire
// encoding the flight key is derived from.
func TestCompoundCoalescing(t *testing.T) {
	svc := textTestService(t)
	req, err := query.Parse("exists(states(0) @ [2,3]) and exists(states(1) @ [1,3])")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := req.ExprHint(); !ok {
		t.Fatal("not a compound request")
	}
	ds, err := svc.dataset("d")
	if err != nil {
		t.Fatal(err)
	}
	key1, ok1 := svc.flightKey(ds, req)
	key2, ok2 := svc.flightKey(ds, req)
	if !ok1 || !ok2 || key1 != key2 {
		t.Fatalf("compound flight keys unstable: %v %v", ok1, ok2)
	}
	// And a subscription over the compound query updates on ingest.
	sub, err := svc.Subscribe(context.Background(), "d", req)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	<-sub.Updates() // snapshot
	obj, err := core.NewObject(99, nil, core.Observation{Time: 0, PDF: markov.PointDistribution(3, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Track("d", obj); err != nil {
		t.Fatal(err)
	}
	select {
	case up, open := <-sub.Updates():
		if !open {
			t.Fatalf("subscription closed unexpectedly: %v", sub.Err())
		}
		_ = up // any refresh is fine; correctness of diffs is pinned elsewhere
	case <-time.After(5 * time.Second):
		t.Fatal("no update after ingest")
	}
}
