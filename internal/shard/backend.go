package shard

import (
	"context"
	"iter"

	"ust/internal/core"
)

// Backend is one shard as the router drives it: the evaluation surface
// the fan-out and merge layers call, plus the mirroring surface that
// keeps the shard's copy of its slice in step with the router's shadow.
// An in-process shard is a core.Engine over the shadow database itself
// (LocalBackend); a remote shard dispatches the same calls to a ustserve
// worker process over the pinned wire contract (internal/dist). The
// router treats both identically — a ring can mix them freely.
type Backend interface {
	// Evaluate, EvaluateSeq and AggregateFactors answer requests over
	// the shard's slice, exactly like the corresponding core.Engine
	// methods.
	Evaluate(ctx context.Context, req core.Request) (*core.Response, error)
	EvaluateSeq(ctx context.Context, req core.Request) iter.Seq2[core.Result, error]
	AggregateFactors(ctx context.Context, req core.Request) (*core.FactorSet, error)
	// Import mirrors upserts of the given objects onto the shard, in
	// slice order, under the router's migration generation fence: a
	// worker that has already applied a later generation rejects the
	// call instead of double-applying it. In-process shards share the
	// router's shadow database and return immediately.
	Import(ctx context.Context, gen uint64, objs []*core.Object) error
	// Evict removes the given object ids from the shard, under the same
	// generation fence.
	Evict(ctx context.Context, gen uint64, ids []int) error
	// Close releases the backend's resources (connections, goroutines).
	// The router closes backends it retires (Shrink) and every backend
	// on Router.Close.
	Close() error
}

// LocalBackend is the in-process shard: a core.Engine over the router's
// shadow database for that shard. Import and Evict are no-ops — the
// engine reads the shadow directly, so the router's own bookkeeping IS
// the shard state.
type LocalBackend struct {
	engine *core.Engine
}

// NewLocalBackend wraps an engine as a shard backend.
func NewLocalBackend(engine *core.Engine) *LocalBackend {
	return &LocalBackend{engine: engine}
}

func (b *LocalBackend) Evaluate(ctx context.Context, req core.Request) (*core.Response, error) {
	return b.engine.Evaluate(ctx, req)
}

func (b *LocalBackend) EvaluateSeq(ctx context.Context, req core.Request) iter.Seq2[core.Result, error] {
	return b.engine.EvaluateSeq(ctx, req)
}

func (b *LocalBackend) AggregateFactors(ctx context.Context, req core.Request) (*core.FactorSet, error) {
	return b.engine.AggregateFactors(ctx, req)
}

func (b *LocalBackend) Import(context.Context, uint64, []*core.Object) error { return nil }
func (b *LocalBackend) Evict(context.Context, uint64, []int) error           { return nil }
func (b *LocalBackend) Close() error                                         { return nil }

// BackendFactory builds the backend for one shard. label is the shard's
// ring label; shadow is the router-owned shadow database holding (from
// the backend's point of view, read-only) the shard's slice — a local
// backend builds its engine over it, a remote backend ignores it and
// receives the same slice through Import calls instead.
type BackendFactory func(label int, shadow *core.Database) (Backend, error)

// LocalFactory returns the in-process BackendFactory: every shard is an
// engine over its shadow database with the given options. This is what
// New uses; it is exported so mixed topologies can fall back to it for
// the shards they keep local.
func LocalFactory(opts core.Options) BackendFactory {
	return func(_ int, shadow *core.Database) (Backend, error) {
		return NewLocalBackend(core.NewEngine(shadow, opts)), nil
	}
}
