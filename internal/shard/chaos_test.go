package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"ust/internal/conformance"
	"ust/internal/core"
	"ust/internal/markov"
)

func paperChain(t testing.TB) *markov.Chain {
	t.Helper()
	chain, err := markov.FromDense([][]float64{
		{0, 0, 1},
		{0.6, 0, 0.4},
		{0, 0.8, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return chain
}

// TestIngestDuringShardedQuery hammers the router with concurrent
// evaluations, streams and ingest (Add + Observe). Run under -race in
// CI; the assertion here is consistency — every evaluation observes a
// complete generation, never a half-synced shard set.
func TestIngestDuringShardedQuery(t *testing.T) {
	db, _ := conformance.NewDataset()
	base := db.Len()
	router, err := New(db, 4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	req := core.NewRequest(core.PredicateExists,
		core.WithStates(core.Interval(40, 55)), core.WithTimes(core.Interval(5, 8)))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if g == 0 {
					n := 0
					for _, serr := range router.EvaluateSeq(ctx, req) {
						if serr != nil {
							t.Errorf("stream during ingest: %v", serr)
							return
						}
						n++
					}
					if n < base {
						t.Errorf("stream saw %d objects, fewer than the initial %d", n, base)
						return
					}
					continue
				}
				resp, qerr := router.Evaluate(ctx, req)
				if qerr != nil {
					t.Errorf("query during ingest: %v", qerr)
					return
				}
				if len(resp.Results) < base {
					t.Errorf("evaluation saw %d objects, fewer than the initial %d", len(resp.Results), base)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		id := 5000 + i
		o, oerr := core.NewObject(id, nil, core.Observation{Time: 0, PDF: markov.PointDistribution(64, i%64)})
		if oerr != nil {
			t.Fatal(oerr)
		}
		if err := router.Add(o); err != nil {
			t.Fatal(err)
		}
		// Re-sight the object where it started: the lazy walk's self-loop
		// keeps the pair of observations always consistent.
		if err := router.Observe(id, core.Observation{Time: 2, PDF: markov.PointDistribution(64, i%64)}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	resp, err := router.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != base+20 {
		t.Fatalf("final scan saw %d objects, want %d", len(resp.Results), base+20)
	}
}

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (plus slack for runtime helpers), failing after the
// deadline — the leak check for cancelled merges.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMidStreamCancellationCleansUp cancels a sharded stream two ways —
// consumer break and context cancellation — and verifies every shard
// goroutine exits (leak-checked) and a context-cancelled scan never
// reads as complete.
func TestMidStreamCancellationCleansUp(t *testing.T) {
	db, _ := conformance.NewDataset()
	router, err := New(db, 8, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	req := core.NewRequest(core.PredicateExists,
		core.WithStates(core.Interval(40, 55)), core.WithTimes(core.Interval(5, 8)))
	baseline := runtime.NumGoroutine()

	// Consumer break after 3 results.
	n := 0
	for _, serr := range router.EvaluateSeq(context.Background(), req) {
		if serr != nil {
			t.Fatalf("stream: %v", serr)
		}
		if n++; n == 3 {
			break
		}
	}
	waitForGoroutines(t, baseline)

	// Context cancellation mid-stream: the sequence must surface the
	// cancellation, not end as if complete.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	n = 0
	var last error
	for _, serr := range router.EvaluateSeq(ctx, req) {
		last = serr
		if serr != nil {
			break
		}
		if n++; n == 2 {
			cancel()
		}
	}
	if !errors.Is(last, context.Canceled) {
		t.Fatalf("cancelled stream ended with %v, want context.Canceled", last)
	}
	waitForGoroutines(t, baseline)
}

// TestColdRouterConcurrentFirstSweep evaluates through a router whose
// chains have never been touched by any engine: the concurrent shard
// sweeps all race to the chains' lazy transpose build on first use
// (distinct observation times → distinct sweep keys, so the cache's
// per-key single-flight does NOT serialize them). Run under -race; the
// regression this pins is the once-guarded Chain.Transposed — without
// it this is a data race.
func TestColdRouterConcurrentFirstSweep(t *testing.T) {
	db, _ := conformance.NewDataset() // fresh chains, observation times 0..3
	router, err := New(db, 8, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	req := core.NewRequest(core.PredicateExists,
		core.WithStates(core.Interval(40, 55)), core.WithTimes(core.Interval(5, 8)))
	resp, err := router.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != db.Len() {
		t.Fatalf("cold sharded scan returned %d results, want %d", len(resp.Results), db.Len())
	}
}

// TestShardErrorDeterministic plants one poisoned object (observed
// after the query horizon) in a database big enough to spread over all
// shards, and requires: the sharded error equals the single-engine
// error byte for byte, on Evaluate, EvaluateSeq and the batch items,
// across repeated runs (scheduling independence); and the failure
// leaves no shard goroutines behind (siblings cancelled).
func TestShardErrorDeterministic(t *testing.T) {
	chain := paperChain(t)
	db := core.NewDatabase(chain)
	for id := 0; id < 40; id++ {
		db.MustAdd(core.MustObject(id, nil, core.Observation{Time: 0, PDF: markov.PointDistribution(3, id%3)}))
	}
	// Observed at t=50, beyond the window horizon below: the QB dot
	// errors on exactly this object.
	db.MustAdd(core.MustObject(99, nil, core.Observation{Time: 50, PDF: markov.PointDistribution(3, 1)}))

	req := core.NewRequest(core.PredicateExists, core.WithStates([]int{0, 1}), core.WithTimes([]int{2, 3}))
	single := core.NewEngine(db, core.Options{})
	_, wantErr := single.Evaluate(context.Background(), req)
	if wantErr == nil {
		t.Fatal("single engine accepted the poisoned object")
	}

	router, err := New(db, 8, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	for run := 0; run < 10; run++ {
		if _, gotErr := router.Evaluate(context.Background(), req); gotErr == nil || gotErr.Error() != wantErr.Error() {
			t.Fatalf("run %d: sharded error %v, single engine %v", run, gotErr, wantErr)
		}
		var streamErr error
		for _, serr := range router.EvaluateSeq(context.Background(), req) {
			if serr != nil {
				streamErr = serr
				break
			}
		}
		if streamErr == nil || streamErr.Error() != wantErr.Error() {
			t.Fatalf("run %d: sharded stream error %v, single engine %v", run, streamErr, wantErr)
		}
	}
	waitForGoroutines(t, baseline)
}

// TestShardErrorDeterministicMultiChain is the regression test for the
// merge's error anchoring: with several chains, a shard's emission
// ranks are not monotonic in global rank, so an error must anchor at
// the shard's MINIMUM undecided rank — anchoring at the next emission
// position leaves a smaller rank permanently unknown and the merge
// would stall instead of surfacing the real error.
func TestShardErrorDeterministicMultiChain(t *testing.T) {
	chainA := paperChain(t)
	chainB, err := markov.FromDense([][]float64{
		{0.5, 0.5, 0},
		{0, 0.5, 0.5},
		{0.5, 0, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDatabase(chainA)
	for id := 0; id < 30; id++ {
		var ch *markov.Chain
		if id%2 == 1 {
			ch = chainB
		}
		db.MustAdd(core.MustObject(id, ch, core.Observation{Time: 0, PDF: markov.PointDistribution(3, id%3)}))
	}
	// Poisoned: observed after the query horizon, on the second chain.
	db.MustAdd(core.MustObject(100, chainB, core.Observation{Time: 50, PDF: markov.PointDistribution(3, 1)}))

	req := core.NewRequest(core.PredicateExists, core.WithStates([]int{0, 1}), core.WithTimes([]int{2, 3}))
	single := core.NewEngine(db, core.Options{})
	_, wantErr := single.Evaluate(context.Background(), req)
	if wantErr == nil {
		t.Fatal("single engine accepted the poisoned object")
	}
	for _, shards := range []int{2, 3, 4, 8} {
		router, rerr := New(db, shards, core.Options{})
		if rerr != nil {
			t.Fatal(rerr)
		}
		for run := 0; run < 5; run++ {
			var streamErr error
			for _, serr := range router.EvaluateSeq(context.Background(), req) {
				if serr != nil {
					streamErr = serr
					break
				}
			}
			if streamErr == nil || streamErr.Error() != wantErr.Error() {
				t.Fatalf("shards=%d run %d: stream error %v, single engine %v",
					shards, run, streamErr, wantErr)
			}
			if _, gotErr := router.Evaluate(context.Background(), req); gotErr == nil || gotErr.Error() != wantErr.Error() {
				t.Fatalf("shards=%d run %d: batch error %v, single engine %v",
					shards, run, gotErr, wantErr)
			}
		}
	}
}

// TestTwoShardErrorsDeterministic plants TWO poisoned objects that land
// on different shards: whichever shard fails first cancels the other
// mid-evaluation, so the raw fan-out error is scheduling-dependent.
// Router.Evaluate must still surface the single engine's error — the
// poisoned object at the lowest emission rank — on every run (the
// canonicalError path).
func TestTwoShardErrorsDeterministic(t *testing.T) {
	chain := paperChain(t)
	db := core.NewDatabase(chain)
	for id := 0; id < 40; id++ {
		db.MustAdd(core.MustObject(id, nil, core.Observation{Time: 0, PDF: markov.PointDistribution(3, id%3)}))
	}
	db.MustAdd(core.MustObject(97, nil, core.Observation{Time: 50, PDF: markov.PointDistribution(3, 1)}))
	db.MustAdd(core.MustObject(98, nil, core.Observation{Time: 60, PDF: markov.PointDistribution(3, 2)}))

	req := core.NewRequest(core.PredicateExists, core.WithStates([]int{0, 1}), core.WithTimes([]int{2, 3}))
	single := core.NewEngine(db, core.Options{})
	_, wantErr := single.Evaluate(context.Background(), req)
	if wantErr == nil {
		t.Fatal("single engine accepted the poisoned objects")
	}

	router, err := New(db, 8, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := router.ring.Owner(97), router.ring.Owner(98); a == b {
		t.Fatalf("test setup: both poisoned objects landed on shard %d; pick other ids", a)
	}
	for run := 0; run < 20; run++ {
		_, gotErr := router.Evaluate(context.Background(), req)
		if gotErr == nil || gotErr.Error() != wantErr.Error() {
			t.Fatalf("run %d: sharded error %v, single engine %v", run, gotErr, wantErr)
		}
	}
}

// TestRebalanceUnderIngest is the live-rebalance property test: while
// queries and ingest hammer the router, the ring repeatedly grows and
// shrinks. Invariants: (a) every evaluation observes a complete object
// set — no id dropped, none duplicated, regardless of which migration
// generation it lands on; (b) after the dust settles, the router's
// answer is byte-identical to a fresh single engine over an identically
// built database.
func TestRebalanceUnderIngest(t *testing.T) {
	db, _ := conformance.NewDataset()
	router, err := New(db, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	req := core.NewRequest(core.PredicateExists,
		core.WithStates(core.Interval(40, 55)), core.WithTimes(core.Interval(5, 8)))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, qerr := router.Evaluate(ctx, req)
				if qerr != nil {
					t.Errorf("query during rebalance: %v", qerr)
					return
				}
				// No duplicated ids within one response; no id appears
				// twice even while its object is migrating shards.
				seen := make(map[int]struct{}, len(resp.Results))
				for _, r := range resp.Results {
					if _, dup := seen[r.ObjectID]; dup {
						t.Errorf("object %d duplicated in one evaluation", r.ObjectID)
						return
					}
					seen[r.ObjectID] = struct{}{}
				}
			}
		}()
	}

	// Ingest runs concurrently with the rebalance loop below.
	const ingested = 16
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ingested; i++ {
			id := 7000 + i
			o, oerr := core.NewObject(id, nil, core.Observation{Time: 0, PDF: markov.PointDistribution(64, i%64)})
			if oerr != nil {
				t.Errorf("building object: %v", oerr)
				return
			}
			if err := router.Add(o); err != nil {
				t.Errorf("add during rebalance: %v", err)
				return
			}
			if err := router.Observe(id, core.Observation{Time: 2, PDF: markov.PointDistribution(64, i%64)}); err != nil {
				t.Errorf("observe during rebalance: %v", err)
				return
			}
		}
	}()

	// The rebalance loop: grow by one shard, then shrink it away, four
	// times over, with queries and ingest in flight the whole time.
	for round := 0; round < 4; round++ {
		label, gerr := router.Grow(LocalFactory(core.Options{}))
		if gerr != nil {
			t.Fatalf("round %d grow: %v", round, gerr)
		}
		if serr := router.Shrink(label); serr != nil {
			t.Fatalf("round %d shrink(%d): %v", round, label, serr)
		}
	}
	close(stop)
	wg.Wait()

	// End state: identical to a fresh single engine over the same build
	// sequence (dataset + the ingested tail).
	refDB, _ := conformance.NewDataset()
	for i := 0; i < ingested; i++ {
		id := 7000 + i
		refDB.MustAdd(core.MustObject(id, nil,
			core.Observation{Time: 0, PDF: markov.PointDistribution(64, i%64)},
			core.Observation{Time: 2, PDF: markov.PointDistribution(64, i%64)}))
	}
	single := core.NewEngine(refDB, core.Options{})
	want, err := single.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := router.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("post-rebalance scan: %d results, want %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if got.Results[i].ObjectID != want.Results[i].ObjectID || got.Results[i].Prob != want.Results[i].Prob {
			t.Fatalf("result %d diverged after rebalance: %+v vs %+v", i, got.Results[i], want.Results[i])
		}
	}
}

// TestBatchPerItemErrorRouting pins EvaluateBatchSeq's contract on the
// router: a failing request yields its own item error while its
// neighbours still answer, in input order.
func TestBatchPerItemErrorRouting(t *testing.T) {
	db, _ := conformance.NewDataset()
	router, err := New(db, 4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	good := core.NewRequest(core.PredicateExists,
		core.WithStates(core.Interval(40, 55)), core.WithTimes(core.Interval(5, 8)))
	bad := core.NewRequest(core.PredicateExists,
		core.WithStates(core.Interval(40, 55)), core.WithTimes(core.Interval(5, 8)),
		core.WithThreshold(1.5)) // threshold outside [0,1]: validation error

	var items []core.BatchItem
	for item := range router.EvaluateBatchSeq(context.Background(), []core.Request{good, bad, good}) {
		items = append(items, item)
	}
	if len(items) != 3 {
		t.Fatalf("got %d items, want 3", len(items))
	}
	for i, item := range items {
		if item.Index != i {
			t.Fatalf("item %d carries index %d", i, item.Index)
		}
	}
	if items[0].Err != nil || items[2].Err != nil {
		t.Fatalf("good items errored: %v / %v", items[0].Err, items[2].Err)
	}
	if items[1].Err == nil {
		t.Fatal("bad item did not error")
	}
	single := core.NewEngine(db, core.Options{})
	_, wantErr := single.Evaluate(context.Background(), bad)
	if wantErr == nil || items[1].Err.Error() != wantErr.Error() {
		t.Fatalf("bad item error %v, single engine %v", items[1].Err, wantErr)
	}
	if fmt.Sprint(items[0].Response.Results) != fmt.Sprint(items[2].Response.Results) {
		t.Fatal("identical good requests diverged inside one batch")
	}
}
