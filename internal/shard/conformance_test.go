package shard

import (
	"context"
	"fmt"
	"testing"

	"ust/internal/conformance"
	"ust/internal/core"
)

// TestShardedConformance pins the router, at every shard count the PR
// cares about, to byte-identical results against a single engine over
// the same database — the whole point of the merge layer. Serial
// Monte-Carlo is exempt by documented design (per-object seeding); the
// seeded MC cases cover sampling.
func TestShardedConformance(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db, res := conformance.NewDataset()
			ref := core.NewEngine(db, core.Options{})
			router, err := New(db, shards, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			conformance.Verify(t, res, ref, router, conformance.Options{SkipSerialMC: true})
		})
	}
}

// TestShardedMultiObsConformance runs the multi-observation table — all
// objects carry ≥3 sightings, so the interpolating kernels answer every
// case — against the router at each shard count, including the
// ingest-during-query pass: observations appended through
// Router.Observe must reach every shard replica before the table
// replays.
func TestShardedMultiObsConformance(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db, res := conformance.NewMultiObsDataset()
			ref := core.NewEngine(db, core.Options{})
			router, err := New(db, shards, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			conformance.VerifyMultiObs(t, db, res, ref, router, router.Observe,
				conformance.Options{SkipSerialMC: true})
		})
	}
}

// TestShardedCounterAggregation pins the Response bookkeeping across
// shards: Filter funnel counters and the planner estimates must equal
// the single-engine run's exactly, and — because the shared cache's
// per-key single-flight computes each distinct sweep once fleet-wide —
// the summed cache Misses must too (the summed Hits additionally count
// each other shard's lookup of the same sweep).
func TestShardedCounterAggregation(t *testing.T) {
	db, res := conformance.NewDataset()
	ctx := context.Background()
	cases := []struct {
		name string
		req  core.Request
		// exactFilter: the filter funnel is a per-object decision
		// (threshold against fixed τ), so shard sums must equal the
		// single run exactly. Top-k pruning races an evolving bar and
		// is only candidate-count comparable.
		exactFilter bool
		// exactMisses: every sweep the single engine computes is
		// computed exactly once fleet-wide (scan and threshold paths;
		// top-k refinement sets depend on the bar).
		exactMisses bool
	}{
		{"scan-qb", core.NewRequest(core.PredicateExists,
			core.WithStates(core.Interval(40, 55)), core.WithTimes(core.Interval(5, 8))),
			true, true},
		{"threshold-filtered", core.NewRequest(core.PredicateExists,
			core.WithStates(core.Interval(40, 55)), core.WithTimes(core.Interval(5, 8)),
			core.WithThreshold(0.25)),
			true, true},
		{"topk-auto", core.NewRequest(core.PredicateExists,
			core.WithStates(core.Interval(40, 55)), core.WithTimes(core.Interval(5, 8)),
			core.WithAutoPlan(), core.WithTopK(7)),
			false, false},
	}
	_ = res
	for _, tc := range cases {
		req := tc.req
		t.Run(tc.name, func(t *testing.T) {
			single := core.NewEngine(db, core.Options{})
			router, err := New(db, 8, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := single.Evaluate(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			got, err := router.Evaluate(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if tc.exactMisses && got.Cache.Misses != want.Cache.Misses {
				t.Errorf("summed cache misses %d, single engine %d (sweeps must compute once fleet-wide)",
					got.Cache.Misses, want.Cache.Misses)
			}
			if got.Cache.Hits+got.Cache.Misses < want.Cache.Hits+want.Cache.Misses {
				t.Errorf("sharded cache traffic %d+%d lost lookups vs single %d+%d",
					got.Cache.Hits, got.Cache.Misses, want.Cache.Hits, want.Cache.Misses)
			}
			if tc.exactFilter {
				if got.Filter != want.Filter {
					t.Errorf("summed filter funnel %+v, single engine %+v", got.Filter, want.Filter)
				}
			} else if got.Filter.Candidates != want.Filter.Candidates {
				t.Errorf("summed filter candidates %d, single engine %d",
					got.Filter.Candidates, want.Filter.Candidates)
			}
			if len(got.Plans) != len(want.Plans) {
				t.Errorf("plans length %d vs %d", len(got.Plans), len(want.Plans))
			}
			for i := range got.Plans {
				if got.Plans[i] != want.Plans[i] {
					t.Errorf("plan %d: sharded %+v, single %+v", i, got.Plans[i], want.Plans[i])
				}
			}
		})
	}
}
