package shard

import "testing"

// FuzzRing pins the hash ring's three contracts over arbitrary id
// populations: determinism (same ids → same shards, across ring
// instances), balance (max/min load ratio bounded at 10k ids), and
// minimal movement (growing an N-shard ring moves at most ⌈n/N⌉ ids —
// the consistent-hashing guarantee, with ⌈n/N⌉ − n/(N+1) of slack over
// the expectation — and every moved id lands on the new shard;
// shrinking moves exactly the removed shard's ids).
func FuzzRing(f *testing.F) {
	f.Add(uint64(1), uint8(8))
	f.Add(uint64(42), uint8(3))
	f.Add(uint64(0xdeadbeef), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8) {
		const population = 10000
		n := int(nRaw%8) + 1 // 1..8 shards, the PR's deployment range
		ids := make([]int, population)
		x := seed
		for i := range ids {
			// splitmix64 stream: arbitrary, possibly adversarial ids.
			x += 0x9e3779b97f4a7c15
			ids[i] = int(mix(x, 0))
		}

		ring, err := NewRing(n)
		if err != nil {
			t.Fatal(err)
		}
		twin, _ := NewRing(n)
		counts := make(map[int]int, n)
		owners := make([]int, population)
		for i, id := range ids {
			owners[i] = ring.Owner(id)
			if owners[i] < 0 || owners[i] >= n {
				t.Fatalf("owner %d outside [0,%d)", owners[i], n)
			}
			if twin.Owner(id) != owners[i] {
				t.Fatalf("assignment not deterministic for id %d", id)
			}
			counts[owners[i]]++
		}
		if n > 1 {
			lo, hi := population, 0
			for s := 0; s < n; s++ {
				lo, hi = min(lo, counts[s]), max(hi, counts[s])
			}
			if lo == 0 || float64(hi)/float64(lo) > 1.5 {
				t.Fatalf("unbalanced: min %d max %d over %d shards", lo, hi, n)
			}
		}

		// Growing moves at most ⌈n/N⌉ ids, all onto the new shard.
		grown := ring.Grown()
		moved := 0
		for i, id := range ids {
			o := grown.Owner(id)
			if o == owners[i] {
				continue
			}
			if o != n {
				t.Fatalf("id %d moved to shard %d, not the new shard %d", id, o, n)
			}
			moved++
		}
		if bound := (population + n - 1) / n; moved > bound {
			t.Fatalf("grow moved %d ids, bound %d", moved, bound)
		}

		// Shrinking moves exactly the removed shard's ids.
		victim := int(seed % uint64(n))
		shrunk, err := ring.Shrunk(victim)
		if n == 1 {
			if err == nil {
				t.Fatal("removing the last shard accepted")
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range ids {
			o := shrunk.Owner(id)
			if owners[i] == victim {
				if o == victim {
					t.Fatalf("id %d still owned by removed shard", id)
				}
				continue
			}
			if o != owners[i] {
				t.Fatalf("id %d moved (%d→%d) though its shard survived", id, owners[i], o)
			}
		}
	})
}
