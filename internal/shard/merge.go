package shard

import (
	"container/heap"
	"context"
	"fmt"
	"iter"
	"sync"

	"ust/internal/core"
	"ust/internal/markov"
)

// The merge layer: put shard result streams back into exactly the
// single-engine output.
//
// A single engine emits results in a deterministic order — database
// insertion order for the Monte-Carlo strategy, chain-group order
// (groups by first occurrence, database order within) for everything
// else. A shard emits ITS objects in its own such order, which is not
// in general a rank-sorted subsequence of the global one: with several
// chains, a shard whose first object belongs to chain B emits its
// B-group before its A-group even when chain A leads globally. The
// merge therefore works over precomputed emission-order indexes: every
// result maps to its global rank, out-of-rank arrivals buffer, and the
// consumer drains the decided prefix. Threshold-dropped objects leave
// gaps; a shard yielding a later object (or finishing) proves the gap
// was a drop, not a straggler.

// orderIndex is the emission-order bookkeeping for one generation of
// the database: the global rank of every object id, and each shard's
// own emission order expressed as global ranks.
type orderIndex struct {
	n          int
	rank       map[int]int
	shardRanks [][]int
}

// buildOrder derives the index from the full database and the shard
// members. insertion selects database insertion order (Monte-Carlo);
// otherwise chain-group order.
func buildOrder(full *core.Database, members []*member, insertion bool) *orderIndex {
	seq := emissionOrder(full, insertion)
	ord := &orderIndex{n: len(seq), rank: make(map[int]int, len(seq))}
	for i, id := range seq {
		ord.rank[id] = i
	}
	ord.shardRanks = make([][]int, len(members))
	for s, m := range members {
		sub := emissionOrder(m.db, insertion)
		ranks := make([]int, len(sub))
		for i, id := range sub {
			ranks[i] = ord.rank[id]
		}
		ord.shardRanks[s] = ranks
	}
	return ord
}

// emissionOrder lists a database's object ids in the order the engine's
// streams emit them.
func emissionOrder(db *core.Database, insertion bool) []int {
	objs := db.Objects()
	ids := make([]int, 0, len(objs))
	if insertion {
		for _, o := range objs {
			ids = append(ids, o.ID)
		}
		return ids
	}
	idx := map[*markov.Chain]int{}
	var groups [][]int
	for _, o := range objs {
		ch := db.ChainOf(o)
		gi, ok := idx[ch]
		if !ok {
			gi = len(groups)
			idx[ch] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], o.ID)
	}
	for _, g := range groups {
		ids = append(ids, g...)
	}
	return ids
}

// mergeByRank restores shard batch results to global emission order.
// Ranks are dense unique integers, so this is a single linear placement
// into a rank-indexed scratch slice plus a compaction — no comparison
// sort, no per-comparison map lookups. A result for an id the order
// index does not know (an out-of-band database mutation mid-flight)
// fails loudly, matching mergeScan's handling of the same breach.
func mergeByRank(ord *orderIndex, resps []*core.Response) ([]core.Result, error) {
	total := 0
	for _, sr := range resps {
		total += len(sr.Results)
	}
	type slot struct {
		r  core.Result
		ok bool
	}
	byRank := make([]slot, ord.n)
	for _, sr := range resps {
		for _, res := range sr.Results {
			g, known := ord.rank[res.ObjectID]
			if !known {
				return nil, fmt.Errorf("shard: result for unknown object %d", res.ObjectID)
			}
			byRank[g] = slot{r: res, ok: true}
		}
	}
	out := make([]core.Result, 0, total)
	for _, s := range byRank {
		if s.ok {
			out = append(out, s.r)
		}
	}
	return out, nil
}

// headHeap is the k-way merge frontier over per-shard ranked lists,
// ordered by the engine's exported ranking comparator
// (core.BetterRanked), so the merge can never drift from the tie-break
// the shards sorted with.
type headHeap struct {
	lists [][]core.Result
	heads []headRef
}

type headRef struct{ list, pos int }

func (h *headHeap) Len() int { return len(h.heads) }
func (h *headHeap) Less(i, j int) bool {
	a := h.lists[h.heads[i].list][h.heads[i].pos]
	b := h.lists[h.heads[j].list][h.heads[j].pos]
	return core.BetterRanked(a, b)
}
func (h *headHeap) Swap(i, j int)      { h.heads[i], h.heads[j] = h.heads[j], h.heads[i] }
func (h *headHeap) Push(x interface{}) { h.heads = append(h.heads, x.(headRef)) }
func (h *headHeap) Pop() interface{} {
	old := h.heads
	x := old[len(old)-1]
	h.heads = old[:len(old)-1]
	return x
}

// mergeTopK merges per-shard ranked top-k lists into the global top-k:
// a k-way heap merge under the engine's exact tie-break order. Each
// shard list is already sorted by better (the engine's ranked output),
// and every shard returned its local top k, so the global top k is a
// prefix of the merged order.
func mergeTopK(k int, lists [][]core.Result) []core.Result {
	h := &headHeap{lists: lists}
	for s, l := range lists {
		if len(l) > 0 {
			h.heads = append(h.heads, headRef{list: s})
		}
	}
	heap.Init(h)
	out := make([]core.Result, 0, k)
	for len(out) < k && h.Len() > 0 {
		top := h.heads[0]
		out = append(out, h.lists[top.list][top.pos])
		if top.pos+1 < len(h.lists[top.list]) {
			h.heads[0].pos++
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return out
}

// shardEvent is one unit of shard-stream progress reaching the merge
// consumer.
type shardEvent struct {
	shard int
	r     core.Result
	err   error
	done  bool
}

// mergeScan fans the prepared request out as shard streams and yields
// the merged results in global emission order — on success, exactly the
// single-engine sequence. On a per-object error the stream ends with
// the single engine's error VALUE, anchored at the failing shard's
// minimum undecided rank; the preceding result prefix is deterministic
// for a given shard count but may be SHORTER than the single engine's
// (the failing shard stops at its own emission position, so its
// lower-ranked, later-emitted objects were never computed and cannot be
// yielded). The first surfaced error — or the consumer breaking out —
// cancels every shard goroutine. A cancelled scan never looks complete:
// ctx.Err() is yielded if the context ends the merge.
func (r *Router) mergeScan(ctx context.Context, p *prep) iter.Seq2[core.Result, error] {
	return func(yield func(core.Result, error) bool) {
		ctx, cancel := context.WithCancel(ctx)
		var wg sync.WaitGroup
		defer func() {
			cancel()
			wg.Wait()
		}()

		ord := r.orderFor(p.mcOrder)
		n := ord.n
		const (
			unknown = uint8(iota)
			ready
			dropped
		)
		status := make([]uint8, n)
		results := make([]core.Result, n)
		errAt := make([]error, n) // indexed by the anchored rank
		// Trailing errors (a shard failing after emitting everything it
		// owned) have no rank to anchor to; the lowest shard index wins
		// so the surfaced error is schedule-independent.
		var tailErr error
		tailShard := len(r.members)
		cursors := make([]int, len(r.members))

		events := make(chan shardEvent, 4*len(r.members))
		send := func(ev shardEvent) bool {
			select {
			case events <- ev:
				return true
			case <-ctx.Done():
				return false
			}
		}
		sem := make(chan struct{}, p.workers)
		for s, m := range r.members {
			wg.Add(1)
			go func(s int, b Backend) {
				defer wg.Done()
				select {
				case sem <- struct{}{}:
					defer func() { <-sem }()
				case <-ctx.Done():
					return
				}
				for res, serr := range b.EvaluateSeq(ctx, p.req) {
					if serr != nil {
						send(shardEvent{shard: s, err: serr})
						return
					}
					if !send(shardEvent{shard: s, r: res}) {
						return
					}
				}
				send(shardEvent{shard: s, done: true})
			}(s, m.backend)
		}

		next := 0
		for doneShards := 0; doneShards < len(r.members); {
			var ev shardEvent
			select {
			case ev = <-events:
			case <-ctx.Done():
				yield(core.Result{}, ctx.Err())
				return
			}
			s := ev.shard
			sr := ord.shardRanks[s]
			switch {
			case ev.done:
				doneShards++
				// Everything this shard never emitted was filtered out.
				for _, g := range sr[cursors[s]:] {
					status[g] = dropped
				}
				cursors[s] = len(sr)
			case ev.err != nil:
				doneShards++
				// Anchor the error at the shard's MINIMUM undecided rank
				// so it surfaces in deterministic (merge-order) position.
				// The shard's emission ranks are not monotonic in global
				// rank (multi-chain databases), so the next emission
				// position is not necessarily the smallest rank the
				// failure leaves undecided — anchoring there could leave
				// a smaller rank permanently unknown and stall the merge.
				pos := n
				for _, g := range sr[cursors[s]:] {
					if g < pos {
						pos = g
					}
				}
				if pos == n {
					if s < tailShard {
						tailErr, tailShard = ev.err, s
					}
				} else {
					errAt[pos] = ev.err
				}
			default:
				g, ok := ord.rank[ev.r.ObjectID]
				if !ok {
					yield(core.Result{}, fmt.Errorf("shard: result for unknown object %d", ev.r.ObjectID))
					return
				}
				for cursors[s] < len(sr) && sr[cursors[s]] != g {
					status[sr[cursors[s]]] = dropped
					cursors[s]++
				}
				if cursors[s] == len(sr) {
					yield(core.Result{}, fmt.Errorf("shard: out-of-order result for object %d", ev.r.ObjectID))
					return
				}
				status[g] = ready
				results[g] = ev.r
				cursors[s]++
			}
			for next < n {
				if errAt[next] != nil {
					yield(core.Result{}, errAt[next])
					return
				}
				if status[next] == unknown {
					break
				}
				if status[next] == ready && !yield(results[next], nil) {
					return
				}
				next++
			}
		}
		if next < n {
			// Every shard finished yet ranks remain undecided — only an
			// anchored error can explain it, and min-rank anchoring
			// guarantees the first undecided rank carries it.
			if errAt[next] != nil {
				yield(core.Result{}, errAt[next])
			} else {
				yield(core.Result{}, fmt.Errorf("shard: merge stalled at rank %d", next))
			}
			return
		}
		if tailErr != nil {
			yield(core.Result{}, tailErr)
			return
		}
		if err := ctx.Err(); err != nil {
			yield(core.Result{}, err)
		}
	}
}
