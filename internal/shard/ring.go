// Package shard scales the query engine out horizontally: a Router
// partitions a database's objects across N shard engines by consistent
// hashing on object id, fans each request out concurrently, and merges
// the result streams back into exactly the order — and exactly the
// float64 bits — a single engine over the whole database would produce.
// The conformance suite (internal/conformance) pins that equivalence.
package shard

import (
	"fmt"
	"slices"
)

// Ring assigns object ids to shards by rendezvous (highest-random-
// weight) consistent hashing: the owner of an id is the shard whose
// hash paired with the id scores highest. The scheme is deterministic
// (same ids → same shards, across processes and runs), balanced (each
// shard receives ~1/N of any id population, multinomially), and
// minimally disruptive: adding a shard moves only the ids the new shard
// now wins (~1/(N+1) of them), removing one moves only the ids it
// owned. Rings are immutable; Grown and Shrunk return rebalanced
// copies.
type Ring struct {
	shards []int    // sorted shard labels
	hashed []uint64 // per-label hash, precomputed (id-independent)
}

// newRing wraps a sorted label set, precomputing the per-shard hashes
// Owner mixes against each id.
func newRing(labels []int) *Ring {
	hashed := make([]uint64, len(labels))
	for i, s := range labels {
		hashed[i] = mix(uint64(s)+1, ringSalt)
	}
	return &Ring{shards: labels, hashed: hashed}
}

// NewRing builds a ring over shards labeled 0..n-1.
func NewRing(n int) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: ring needs at least one shard, got %d", n)
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	return newRing(labels), nil
}

// N returns the number of shards.
func (r *Ring) N() int { return len(r.shards) }

// Shards returns the shard labels in ascending order.
func (r *Ring) Shards() []int { return slices.Clone(r.shards) }

// Owner returns the shard label owning the id: the highest-scoring
// (hash, id) pair, ties broken toward the smaller label so ownership
// is a pure function of the label set.
func (r *Ring) Owner(id int) int {
	best, bestScore := r.shards[0], uint64(0)
	for i, h := range r.hashed {
		score := mix(h, uint64(int64(id)))
		if i == 0 || score > bestScore {
			best, bestScore = r.shards[i], score
		}
	}
	return best
}

// Owners returns the top-k shard labels for the id by descending
// rendezvous score (ties toward the smaller label, matching Owner), so
// Owners(id, 1)[0] == Owner(id) and the full list is a deterministic
// replica placement: removing any prefix of dead owners leaves the
// next-best owner, exactly the shard a ring without the dead labels
// would pick. k is clamped to the ring size.
func (r *Ring) Owners(id, k int) []int {
	if k <= 0 {
		return nil
	}
	k = min(k, len(r.shards))
	type scored struct {
		label int
		score uint64
	}
	ranked := make([]scored, len(r.shards))
	for i, h := range r.hashed {
		ranked[i] = scored{label: r.shards[i], score: mix(h, uint64(int64(id)))}
	}
	slices.SortFunc(ranked, func(a, b scored) int {
		if a.score != b.score {
			if a.score > b.score {
				return -1
			}
			return 1
		}
		return a.label - b.label
	})
	out := make([]int, k)
	for i := range out {
		out[i] = ranked[i].label
	}
	return out
}

// Grown returns a ring with one more shard, labeled max(labels)+1.
// Only ids won by the new shard change owner.
func (r *Ring) Grown() *Ring {
	next := r.shards[len(r.shards)-1] + 1
	return newRing(append(slices.Clone(r.shards), next))
}

// Shrunk returns a ring without the given shard. Only ids that shard
// owned change owner. It is an error to remove the last shard or an
// unknown label.
func (r *Ring) Shrunk(label int) (*Ring, error) {
	i := slices.Index(r.shards, label)
	if i < 0 {
		return nil, fmt.Errorf("shard: unknown shard %d", label)
	}
	if len(r.shards) == 1 {
		return nil, fmt.Errorf("shard: cannot remove the last shard")
	}
	return newRing(slices.Delete(slices.Clone(r.shards), i, i+1)), nil
}

// ringSalt decorrelates the shard-label hash from plain small integers.
const ringSalt = 0x9e3779b97f4a7c15

// mix is the splitmix64 finalizer over the xor of its inputs — the same
// mixing primitive the engine's per-object Monte-Carlo seeds use.
func mix(a, b uint64) uint64 {
	z := a ^ b
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
