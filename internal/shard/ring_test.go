package shard

import "testing"

func TestRingDeterminism(t *testing.T) {
	a, err := NewRing(5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewRing(5)
	for id := -50; id < 1000; id += 7 {
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("ring assignment not deterministic for id %d", id)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Error("NewRing(0) accepted")
	}
	r, _ := NewRing(1)
	if _, err := r.Shrunk(0); err == nil {
		t.Error("removing the last shard accepted")
	}
	if _, err := r.Shrunk(9); err == nil {
		t.Error("removing an unknown shard accepted")
	}
	if r.Owner(42) != 0 {
		t.Error("single-shard ring must own everything")
	}
}

func TestRingGrowRelabels(t *testing.T) {
	r, _ := NewRing(3)
	g := r.Grown()
	if g.N() != 4 {
		t.Fatalf("grown ring has %d shards", g.N())
	}
	shrunk, err := g.Shrunk(3)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 2000; id++ {
		if shrunk.Owner(id) != r.Owner(id) {
			t.Fatalf("grow+shrink is not the identity for id %d", id)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r, _ := NewRing(8)
	counts := make([]int, 8)
	for id := 0; id < 10000; id++ {
		counts[r.Owner(id)]++
	}
	lo, hi := counts[0], counts[0]
	for _, c := range counts[1:] {
		lo, hi = min(lo, c), max(hi, c)
	}
	if lo == 0 || float64(hi)/float64(lo) > 1.5 {
		t.Fatalf("unbalanced ring: min %d max %d (%v)", lo, hi, counts)
	}
}
