package shard

import "testing"

func TestRingDeterminism(t *testing.T) {
	a, err := NewRing(5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewRing(5)
	for id := -50; id < 1000; id += 7 {
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("ring assignment not deterministic for id %d", id)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Error("NewRing(0) accepted")
	}
	r, _ := NewRing(1)
	if _, err := r.Shrunk(0); err == nil {
		t.Error("removing the last shard accepted")
	}
	if _, err := r.Shrunk(9); err == nil {
		t.Error("removing an unknown shard accepted")
	}
	if r.Owner(42) != 0 {
		t.Error("single-shard ring must own everything")
	}
}

func TestRingGrowRelabels(t *testing.T) {
	r, _ := NewRing(3)
	g := r.Grown()
	if g.N() != 4 {
		t.Fatalf("grown ring has %d shards", g.N())
	}
	shrunk, err := g.Shrunk(3)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 2000; id++ {
		if shrunk.Owner(id) != r.Owner(id) {
			t.Fatalf("grow+shrink is not the identity for id %d", id)
		}
	}
}

func TestRingOwners(t *testing.T) {
	r, _ := NewRing(5)
	for id := -100; id < 1000; id += 3 {
		owners := r.Owners(id, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%d, 3) returned %d labels", id, len(owners))
		}
		if owners[0] != r.Owner(id) {
			t.Fatalf("Owners(%d)[0] = %d, Owner = %d", id, owners[0], r.Owner(id))
		}
		seen := map[int]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("Owners(%d, 3) has duplicate label %d: %v", id, o, owners)
			}
			seen[o] = true
		}
		// Failover contract: drop the primary from the ring and the
		// survivor ring's owner must be the second replica.
		shrunk, err := r.Shrunk(owners[0])
		if err != nil {
			t.Fatal(err)
		}
		if got := shrunk.Owner(id); got != owners[1] {
			t.Fatalf("id %d: ring minus primary owns %d, Owners[1] = %d", id, got, owners[1])
		}
	}
}

func TestRingOwnersClamp(t *testing.T) {
	r, _ := NewRing(2)
	if got := r.Owners(7, 10); len(got) != 2 {
		t.Fatalf("Owners clamp: got %v", got)
	}
	if got := r.Owners(7, 0); got != nil {
		t.Fatalf("Owners(_, 0) = %v, want nil", got)
	}
	// All shards must appear exactly once in the full owner list.
	full := r.Owners(7, 2)
	if (full[0] == full[1]) || (full[0] != 0 && full[0] != 1) {
		t.Fatalf("full owner list malformed: %v", full)
	}
}

func TestRingBalance(t *testing.T) {
	r, _ := NewRing(8)
	counts := make([]int, 8)
	for id := 0; id < 10000; id++ {
		counts[r.Owner(id)]++
	}
	lo, hi := counts[0], counts[0]
	for _, c := range counts[1:] {
		lo, hi = min(lo, c), max(hi, c)
	}
	if lo == 0 || float64(hi)/float64(lo) > 1.5 {
		t.Fatalf("unbalanced ring: min %d max %d (%v)", lo, hi, counts)
	}
}
