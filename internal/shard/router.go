package shard

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"

	"ust/internal/core"
)

// Router is a sharded engine: it implements the same Evaluate /
// EvaluateSeq / EvaluateBatch surface as core.Engine (core.Evaluator)
// over N shard engines, each owning the slice of the database the
// consistent-hash ring assigns it. Requests fan out concurrently —
// bounded by WithParallelism, with context cancellation propagating to
// every shard — and the result streams merge back into exactly the
// single-engine output: rank-ordered merge for scans, k-way heap merge
// with the engine's tie-break order for top-k.
//
// All shards share one score cache (core.SharedCache), so a chain's
// backward sweep — which depends only on (chain, window, observation
// time), never on which objects a shard holds — is computed once per
// distinct key across the fleet and every other shard hits.
//
// Semantics relative to a single engine over the same database:
//
//   - Results are byte-identical (same float64 bits, same order) for
//     every predicate, strategy and ranking, with one exception: the
//     Monte-Carlo strategy always uses per-object seeding (as if
//     WithParallelism(≥2)), because the serial variant's shared rng
//     stream is inherently a whole-database sequence. Sharded MC is
//     therefore deterministic and independent of the shard count, and
//     matches any single engine run with WithParallelism(≥2).
//   - Response.Cache and Response.Filter sum the shard responses; the
//     shared cache's single-flight keeps the summed Misses equal to
//     the single-engine count (each distinct sweep computes once).
//   - Auto-planned requests are planned once against the full database,
//     so every shard runs the strategy a single engine would have
//     picked; Response.Plans carries those full-database estimates.
//   - Per-object evaluation failures surface deterministically
//     (schedule-independent), and — when a single shard fails — as the
//     single engine's exact error value. With failures on SEVERAL
//     shards the surfaced error is the one anchored at the lowest
//     undecided merge rank, which can name a different poisoned object
//     than the single engine's first-in-emission-order pick. A FAILING
//     EvaluateSeq may also stream fewer results before the error than
//     a single engine would (the failing shard's uncomputed objects
//     cannot be yielded); the prefix is still deterministic for a
//     given shard count.
//
// Ingest goes through Add / ReplaceObject / Observe, which keep the
// full database and the owning shard in step while excluding queries.
// Mutating the underlying database directly is permitted only while no
// query is in flight; the router adopts such out-of-band mutations
// lazily (generation check) before the next evaluation.
type Router struct {
	full    *core.Database
	planner *core.Engine // full-database engine: planning + batch warming
	ring    *Ring
	opts    core.Options
	cache   *core.SharedCache
	factory BackendFactory // builds backends for shards Grow adds

	// mu serializes ingest/resync/rebalance (exclusive) against
	// evaluation (shared), mirroring the service layer's per-dataset
	// lock. Holding it exclusively across a migration is also what makes
	// queries during migration trivially byte-identical: no query ever
	// observes a half-moved slice.
	mu      sync.RWMutex
	members []*member
	byLabel map[int]int // ring label → index into members
	synced  uint64
	// topoGen fences Import/Evict calls: it increments on every mirror
	// batch, so a worker can reject a stale or replayed migration op.
	topoGen uint64

	ordMu  sync.Mutex
	orders map[bool]*orderIndex // emission orders, keyed by "insertion order"
}

var _ core.Evaluator = (*Router)(nil)

// member is one shard: the router-side shadow of its slice of the
// database plus the backend answering for it. Shadow databases share
// object and chain pointers with the full database — objects are
// immutable, chains are shared by design (score cache keys are
// chain-identity). For a local backend the shadow IS the shard's
// database; for a remote backend it is the router's bookkeeping copy,
// kept in step with the worker through Import/Evict mirroring, and the
// source of the emission-order indexes the merge layer needs.
type member struct {
	label   int
	db      *core.Database
	backend Backend
}

// New builds an in-process router over db with the given shard count.
// Engine options apply to every shard; unless opts disables caching
// (CacheBytes < 0) or supplies a shared cache, the router creates one
// SharedCache for the fleet.
func New(db *core.Database, shards int, opts core.Options) (*Router, error) {
	opts = normalizeOpts(opts)
	return NewWithBackends(db, shards, opts, LocalFactory(opts))
}

// normalizeOpts materializes the fleet-wide shared cache so every
// engine the router constructs — planner and local shards alike —
// attaches to the same one.
func normalizeOpts(opts core.Options) core.Options {
	if opts.Cache == nil && opts.CacheBytes >= 0 {
		opts.Cache = core.NewSharedCache(opts.CacheBytes)
	}
	return opts
}

// NewWithBackends builds a router whose shards come from factory —
// the mixed-topology constructor: the factory may return in-process
// engines (LocalFactory), remote worker proxies (internal/dist), or a
// mix, keyed by shard label. The factory is retained for Grow.
func NewWithBackends(db *core.Database, shards int, opts core.Options, factory BackendFactory) (*Router, error) {
	if db == nil {
		return nil, fmt.Errorf("shard: nil database")
	}
	if factory == nil {
		return nil, fmt.Errorf("shard: nil backend factory")
	}
	ring, err := NewRing(shards)
	if err != nil {
		return nil, err
	}
	opts = normalizeOpts(opts)
	r := &Router{
		full:    db,
		planner: core.NewEngine(db, opts),
		ring:    ring,
		opts:    opts,
		cache:   opts.Cache,
		factory: factory,
		byLabel: map[int]int{},
		orders:  map[bool]*orderIndex{},
	}
	for _, label := range ring.Shards() {
		if err := r.addMemberLocked(label); err != nil {
			r.closeMembers()
			return nil, err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.syncLocked(); err != nil {
		r.closeMembers()
		return nil, err
	}
	return r, nil
}

// addMemberLocked creates the shadow database and backend for a new
// shard label and appends it to the member list.
func (r *Router) addMemberLocked(label int) error {
	shadow := core.NewDatabase(r.full.DefaultChain())
	backend, err := r.factory(label, shadow)
	if err != nil {
		return fmt.Errorf("shard: backend for shard %d: %w", label, err)
	}
	r.members = append(r.members, &member{label: label, db: shadow, backend: backend})
	r.byLabel[label] = len(r.members) - 1
	return nil
}

func (r *Router) closeMembers() {
	for _, m := range r.members {
		_ = m.backend.Close()
	}
}

// memberOf returns the index of the member owning id under the current
// ring.
func (r *Router) memberOf(id int) int { return r.byLabel[r.ring.Owner(id)] }

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.members) }

// Labels returns the live ring labels in ascending order.
func (r *Router) Labels() []int { return r.ring.Shards() }

// Close closes every backend. The router is unusable afterwards.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, m := range r.members {
		if err := m.backend.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Database returns the full (unsharded) database the router serves.
func (r *Router) Database() *core.Database { return r.full }

// CacheStats snapshots the fleet-wide shared score cache counters.
func (r *Router) CacheStats() core.CacheStats {
	if r.cache == nil {
		return core.CacheStats{}
	}
	return r.cache.Stats()
}

// syncLocked brings every shard up to the full database's generation:
// each object is routed to its ring owner, added or swapped on the
// shadow when its pointer changed, and the changes are mirrored to the
// backends in one Import batch per member. Requires r.mu held
// exclusively.
func (r *Router) syncLocked() error {
	v := r.full.Version()
	if r.synced == v {
		return nil
	}
	pending := make([][]*core.Object, len(r.members))
	for _, o := range r.full.Objects() {
		mi := r.memberOf(o.ID)
		m := r.members[mi]
		switch cur := m.db.Get(o.ID); {
		case cur == o: // unchanged
			continue
		case cur == nil:
			if err := m.db.Add(o); err != nil {
				return err
			}
		default:
			if err := m.db.ReplaceObject(o); err != nil {
				return err
			}
		}
		pending[mi] = append(pending[mi], o)
	}
	for mi, objs := range pending {
		if len(objs) == 0 {
			continue
		}
		r.topoGen++
		if err := r.members[mi].backend.Import(context.Background(), r.topoGen, objs); err != nil {
			return err
		}
	}
	r.synced = v
	r.invalidateOrders()
	return nil
}

func (r *Router) invalidateOrders() {
	r.ordMu.Lock()
	r.orders = map[bool]*orderIndex{}
	r.ordMu.Unlock()
}

// acquire takes the evaluation (shared) lock, first adopting any
// out-of-band database mutations under the exclusive lock.
func (r *Router) acquire() (release func(), err error) {
	for {
		r.mu.RLock()
		if r.synced == r.full.Version() {
			return r.mu.RUnlock, nil
		}
		r.mu.RUnlock()
		r.mu.Lock()
		err := r.syncLocked()
		r.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
}

// --- ingest ---------------------------------------------------------------

// applyLocked routes one just-mutated object to its owning shard and
// stamps the router synced — the O(1) ingest path, sparing the full
// syncLocked rescan when the caller knows exactly what changed.
// Requires r.mu held exclusively and r.synced current BEFORE the full-
// database mutation.
func (r *Router) applyLocked(o *core.Object) error {
	m := r.members[r.memberOf(o.ID)]
	var err error
	if m.db.Get(o.ID) == nil {
		err = m.db.Add(o)
	} else {
		err = m.db.ReplaceObject(o)
	}
	if err != nil {
		return err
	}
	r.topoGen++
	if err := m.backend.Import(context.Background(), r.topoGen, []*core.Object{o}); err != nil {
		return err
	}
	r.synced = r.full.Version()
	r.invalidateOrders()
	return nil
}

// Add inserts a new object, routing it to its owning shard. Queries are
// excluded for the duration (ingest is exclusive, as in the service
// layer).
func (r *Router) Add(o *core.Object) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.syncLocked(); err != nil {
		return err
	}
	if err := r.full.Add(o); err != nil {
		return err
	}
	return r.applyLocked(o)
}

// ReplaceObject swaps in a new version of an existing object on both
// the full database and its owning shard.
func (r *Router) ReplaceObject(o *core.Object) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.syncLocked(); err != nil {
		return err
	}
	if err := r.full.ReplaceObject(o); err != nil {
		return err
	}
	return r.applyLocked(o)
}

// Observe appends an observation to an existing object — the standing
// ingest primitive, mirroring Monitor.Observe and Service.Observe.
func (r *Router) Observe(objectID int, obs core.Observation) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.syncLocked(); err != nil {
		return err
	}
	o := r.full.Get(objectID)
	if o == nil {
		return fmt.Errorf("shard: unknown object %d", objectID)
	}
	updated, err := o.WithObservation(obs)
	if err != nil {
		return err
	}
	if err := r.full.ReplaceObject(updated); err != nil {
		return err
	}
	return r.applyLocked(updated)
}

// --- live rebalance ---------------------------------------------------------
//
// Grow and Shrink change the ring while the router serves traffic. Both
// run under the exclusive lock, so in-flight queries finish against the
// old topology and the next query sees the new one whole — there is no
// observable intermediate state, which is what keeps results during a
// rebalance byte-identical to a single engine. The rendezvous ring
// guarantees minimal movement: growing moves only the ids the new shard
// wins, shrinking only the ids the departing shard owned. Mirror calls
// to remote backends carry the router's migration generation; a failure
// mid-migration returns an error and leaves the router's shadows and
// the failing worker potentially divergent — callers should treat a
// failed rebalance as fatal for the topology and rebuild it.

// Grow adds one shard, labeled max(labels)+1, building its backend via
// factory (nil selects the factory the router was constructed with) and
// migrating exactly the objects the new shard now owns. It returns the
// new shard's label.
func (r *Router) Grow(factory BackendFactory) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.syncLocked(); err != nil {
		return 0, err
	}
	if factory == nil {
		factory = r.factory
	}
	next := r.ring.Grown()
	labels := next.Shards()
	label := labels[len(labels)-1]
	shadow := core.NewDatabase(r.full.DefaultChain())
	backend, err := factory(label, shadow)
	if err != nil {
		return 0, fmt.Errorf("shard: backend for shard %d: %w", label, err)
	}

	// Collect the moving slice in full-database order, so the new
	// shard's shadow (and its worker mirror) list objects in the same
	// relative order every other shard does.
	var moved []*core.Object
	evictFrom := make([][]int, len(r.members))
	for _, o := range r.full.Objects() {
		if next.Owner(o.ID) != label {
			continue
		}
		src := r.memberOf(o.ID)
		if err := shadow.Add(o); err != nil {
			_ = backend.Close()
			return 0, err
		}
		moved = append(moved, o)
		evictFrom[src] = append(evictFrom[src], o.ID)
	}

	// Push to the new worker BEFORE evicting from the old owners: an
	// import failure aborts with every object still owned somewhere.
	if len(moved) > 0 {
		r.topoGen++
		if err := backend.Import(context.Background(), r.topoGen, moved); err != nil {
			_ = backend.Close()
			return 0, fmt.Errorf("shard: migrating %d objects to shard %d: %w", len(moved), label, err)
		}
	}
	for src, ids := range evictFrom {
		if len(ids) == 0 {
			continue
		}
		m := r.members[src]
		for _, id := range ids {
			if err := m.db.Remove(id); err != nil {
				return 0, err
			}
		}
		r.topoGen++
		if err := m.backend.Evict(context.Background(), r.topoGen, ids); err != nil {
			return 0, fmt.Errorf("shard: evicting %d objects from shard %d: %w", len(ids), m.label, err)
		}
	}
	r.members = append(r.members, &member{label: label, db: shadow, backend: backend})
	r.byLabel[label] = len(r.members) - 1
	r.ring = next
	r.invalidateOrders()
	return label, nil
}

// Shrink removes the shard with the given label, redistributing its
// objects to their new ring owners and closing its backend. Removing
// the last shard is an error.
func (r *Router) Shrink(label int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.syncLocked(); err != nil {
		return err
	}
	next, err := r.ring.Shrunk(label)
	if err != nil {
		return err
	}
	di, ok := r.byLabel[label]
	if !ok {
		return fmt.Errorf("shard: unknown shard %d", label)
	}
	departing := r.members[di]

	// Redistribute in the departing shadow's order (a subsequence of
	// full-database order, so destination shadows append consistently
	// with what a fresh sync would build).
	pending := make([][]*core.Object, len(r.members))
	for _, o := range departing.db.Objects() {
		dst := r.byLabel[next.Owner(o.ID)]
		if err := r.members[dst].db.Add(o); err != nil {
			return err
		}
		pending[dst] = append(pending[dst], o)
	}
	for dst, objs := range pending {
		if len(objs) == 0 {
			continue
		}
		r.topoGen++
		if err := r.members[dst].backend.Import(context.Background(), r.topoGen, objs); err != nil {
			return fmt.Errorf("shard: migrating %d objects to shard %d: %w", len(objs), r.members[dst].label, err)
		}
	}
	if err := departing.backend.Close(); err != nil {
		return err
	}
	r.members = append(r.members[:di], r.members[di+1:]...)
	r.byLabel = make(map[int]int, len(r.members))
	for i, m := range r.members {
		r.byLabel[m.label] = i
	}
	r.ring = next
	r.invalidateOrders()
	return nil
}

// --- evaluation -----------------------------------------------------------

// prep is one request resolved against the router: the strategy a
// single engine would run (planned once, over the full database), the
// request to forward to shards, the emission-order index the merge
// needs, and the fan-out width.
type prep struct {
	req      core.Request
	strategy core.Strategy
	plans    []core.CostEstimate
	// mcOrder selects insertion-order emission (Monte-Carlo) for the
	// merge's order index, fetched lazily by the scan paths — top-k
	// merges never need it.
	mcOrder bool
	topK    int
	workers int
}

// prepareLocked validates and plans the request. Requires the shared
// lock. Request-level errors (malformed predicates, bad windows) are
// returned here, before any fan-out, so they surface exactly as a
// single engine would report them.
func (r *Router) prepareLocked(req core.Request) (*prep, error) {
	st, plans, err := r.planner.PlanRequest(req)
	if err != nil {
		return nil, err
	}
	p := &prep{req: req, strategy: st, plans: plans, topK: req.TopKHint()}
	if req.AutoPlanHint() {
		// Pin every shard to the full-database planner's choice: a
		// shard planning over its own slice could pick differently.
		p.req = p.req.With(core.WithStrategy(st))
	}
	p.mcOrder = st == core.StrategyMonteCarlo
	// An explicit WithParallelism(w) is a total budget, not a per-layer
	// one: it caps the shard fan-out at w and divides the remainder
	// among the shards' own workers, so the router never runs ~w² work
	// at once. Unset (0) and GOMAXPROCS (-1) hints forward unchanged —
	// the fan-out defaults to all shards and the runtime bounds actual
	// parallelism.
	p.workers = len(r.members)
	shardPar := req.ParallelismHint()
	if shardPar > 0 {
		if shardPar < p.workers {
			p.workers = shardPar
		}
		shardPar = max(1, shardPar/p.workers)
		p.req = p.req.With(core.WithParallelism(shardPar))
	}
	if st == core.StrategyMonteCarlo && core.ResolveWorkers(shardPar) < 2 {
		// Per-object seeding (see the Router doc comment): the serial
		// sampler's shared rng stream cannot be partitioned. Shard
		// widths that already resolve to ≥2 workers keep their width —
		// they are per-object-seeded either way.
		p.req = p.req.With(core.WithParallelism(2))
		if w := req.ParallelismHint(); w > 0 {
			// Each shard now runs 2 samplers; shrink the fan-out so the
			// caller's total budget still holds (within the documented
			// MC minimum of 2).
			p.workers = max(1, w/2)
		}
	}
	return p, nil
}

// orderFor returns (building lazily) the emission-order index for the
// current generation. Monte-Carlo streams emit in database insertion
// order; every other strategy emits in chain-group order.
func (r *Router) orderFor(insertion bool) *orderIndex {
	r.ordMu.Lock()
	defer r.ordMu.Unlock()
	if ord := r.orders[insertion]; ord != nil {
		return ord
	}
	ord := buildOrder(r.full, r.members, insertion)
	r.orders[insertion] = ord
	return ord
}

// Evaluate answers the request in one batch: concurrent shard fan-out,
// then a deterministic merge. See the Router doc comment for the exact
// single-engine equivalences.
func (r *Router) Evaluate(ctx context.Context, req core.Request) (*core.Response, error) {
	release, err := r.acquire()
	if err != nil {
		return nil, err
	}
	defer release()
	p, err := r.prepareLocked(req)
	if err != nil {
		return nil, err
	}
	return r.evaluateLocked(ctx, p)
}

func (r *Router) evaluateLocked(ctx context.Context, p *prep) (*core.Response, error) {
	if spec, ok := p.req.AggregateHint(); ok {
		return r.aggregateLocked(ctx, p, spec)
	}
	resps, err := r.fanout(ctx, p)
	if err != nil {
		return nil, r.canonicalError(ctx, p, err)
	}
	resp := &core.Response{Strategy: p.strategy, Plans: p.plans}
	for _, sr := range resps {
		resp.Cache.Hits += sr.Cache.Hits
		resp.Cache.Misses += sr.Cache.Misses
		resp.Filter.Candidates += sr.Filter.Candidates
		resp.Filter.Pruned += sr.Filter.Pruned
		resp.Filter.Refined += sr.Filter.Refined
	}
	if p.topK > 0 {
		lists := make([][]core.Result, len(resps))
		for s, sr := range resps {
			lists[s] = sr.Results
		}
		resp.Results = mergeTopK(p.topK, lists)
	} else {
		resp.Results, err = mergeByRank(r.orderFor(p.mcOrder), resps)
		if err != nil {
			return nil, err
		}
	}
	return resp, nil
}

// aggregateLocked answers an aggregate request: every shard contributes
// its objects' per-object factors (not a shard-local PMF!), the pooled
// factor set is folded by the same canonical convolution tree a single
// engine uses — core.FoldFactors sorts by object ID before folding — so
// the resulting distribution is byte-identical to the unsharded answer
// regardless of shard count. Convolving per-shard PMFs instead would be
// mathematically equal but change the tree shape, and with it the
// float64 rounding.
func (r *Router) aggregateLocked(ctx context.Context, p *prep, spec core.AggSpec) (*core.Response, error) {
	sets, err := r.fanoutFactors(ctx, p)
	if err != nil {
		return nil, err
	}
	resp := &core.Response{Strategy: p.strategy, Plans: p.plans}
	pooled := &core.FactorSet{Strategy: p.strategy}
	for _, fs := range sets {
		pooled.Factors = append(pooled.Factors, fs.Factors...)
		if len(fs.Times) > 0 {
			pooled.Times = fs.Times // identical on every shard: derived from the query window
		}
		resp.Cache.Hits += fs.Cache.Hits
		resp.Cache.Misses += fs.Cache.Misses
		resp.Filter.Candidates += fs.Filter.Candidates
		resp.Filter.Pruned += fs.Filter.Pruned
		resp.Filter.Refined += fs.Filter.Refined
	}
	a, err := core.FoldFactors(spec, pooled)
	if err != nil {
		return nil, err
	}
	resp.Agg = a
	return resp, nil
}

// fanoutFactors collects per-shard aggregate factor sets, at most
// p.workers concurrently — the aggregate twin of fanout. Factors never
// leave the process here; the router's members are in-process engines,
// and remote topologies aggregate behind their own engine instead.
func (r *Router) fanoutFactors(ctx context.Context, p *prep) ([]*core.FactorSet, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sets := make([]*core.FactorSet, len(r.members))
	errs := make([]error, len(r.members))
	sem := make(chan struct{}, p.workers)
	var wg sync.WaitGroup
	for s, m := range r.members {
		wg.Add(1)
		go func(s int, b Backend) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				errs[s] = ctx.Err()
				return
			}
			sets[s], errs[s] = b.AggregateFactors(ctx, p.req)
			if errs[s] != nil {
				cancel()
			}
		}(s, m.backend)
	}
	wg.Wait()
	if err := firstRealError(errs); err != nil {
		return nil, err
	}
	return sets, nil
}

// firstRealError picks the surfaced fan-out error: the first real
// failure by shard index wins, with cancellation-induced errors losing
// to any real one.
func firstRealError(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return first
}

// canonicalError turns a fan-out failure into THE deterministic error
// for this request: with several shards failing (or one failure
// cancelling siblings mid-evaluation), fanout's surviving error depends
// on which shard's evaluation got further before the cancel landed.
// Re-deriving the error through the rank-anchored streaming merge —
// whose shard evaluations are never cross-cancelled before their own
// failure surfaces — yields the error at the lowest global emission
// rank, the same one a single engine (and EvaluateSeq) reports. The
// request is re-run without ranking (ranking never changes which
// object errors first); the cost is paid only on the failure path.
func (r *Router) canonicalError(ctx context.Context, p *prep, err error) error {
	if ctx.Err() != nil {
		// Caller-cancelled (or deadline): nothing canonical to derive.
		return err
	}
	scan := *p
	scan.topK = 0
	scan.req = p.req.With(core.WithTopK(0))
	for _, serr := range r.mergeScan(ctx, &scan) {
		if serr != nil {
			return serr
		}
	}
	return err
}

// fanout runs the prepared request on every shard, at most p.workers
// concurrently. A failing shard cancels its siblings; the error it
// returns is canonicalized by the caller (canonicalError) — here the
// first real failure by shard index wins, with cancellation-induced
// errors losing to any real one.
func (r *Router) fanout(ctx context.Context, p *prep) ([]*core.Response, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	resps := make([]*core.Response, len(r.members))
	errs := make([]error, len(r.members))
	sem := make(chan struct{}, p.workers)
	var wg sync.WaitGroup
	for s, m := range r.members {
		wg.Add(1)
		go func(s int, b Backend) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				errs[s] = ctx.Err()
				return
			}
			resps[s], errs[s] = b.Evaluate(ctx, p.req)
			if errs[s] != nil {
				cancel()
			}
		}(s, m.backend)
	}
	wg.Wait()
	if err := firstRealError(errs); err != nil {
		return nil, err
	}
	return resps, nil
}

// EvaluateSeq streams the merged results one object at a time, in the
// single engine's emission order. Breaking out of the loop cancels
// every shard stream.
func (r *Router) EvaluateSeq(ctx context.Context, req core.Request) iter.Seq2[core.Result, error] {
	return func(yield func(core.Result, error) bool) {
		release, err := r.acquire()
		if err != nil {
			yield(core.Result{}, err)
			return
		}
		defer release()
		p, err := r.prepareLocked(req)
		if err != nil {
			yield(core.Result{}, err)
			return
		}
		if _, ok := req.AggregateHint(); ok {
			// Same sentinel as Engine.EvaluateSeq: one distribution is
			// not a result stream.
			yield(core.Result{}, core.ErrAggregateStream)
			return
		}
		if p.topK > 0 {
			// Ranked requests need the full pass anyway; materialize
			// like Engine.EvaluateSeq does, then stream the ranked tail.
			resp, rerr := r.evaluateLocked(ctx, p)
			if rerr != nil {
				yield(core.Result{}, rerr)
				return
			}
			for _, res := range resp.Results {
				if !yield(res, nil) {
					return
				}
			}
			return
		}
		r.mergeScan(ctx, p)(yield)
	}
}

// EvaluateBatch answers every request, one merged Response per request
// in input order, aborting on the first per-request error (lowest index
// wins) — the Engine.EvaluateBatch contract.
func (r *Router) EvaluateBatch(ctx context.Context, reqs []core.Request) ([]*core.Response, error) {
	out := make([]*core.Response, len(reqs))
	for item := range r.EvaluateBatchSeq(ctx, reqs) {
		if item.Err != nil {
			return nil, item.Err
		}
		out[item.Index] = item.Response
	}
	return out, nil
}

// EvaluateBatchSeq streams batch outcomes in input order with per-item
// error routing: one malformed request does not poison the rest. The
// batch's distinct sweeps are warmed ONCE, by the fused kernels of a
// full-database engine publishing into the shared cache, so the
// per-shard evaluations all hit instead of warming N times.
func (r *Router) EvaluateBatchSeq(ctx context.Context, reqs []core.Request) iter.Seq[core.BatchItem] {
	return func(yield func(core.BatchItem) bool) {
		release, err := r.acquire()
		if err != nil {
			for i := range reqs {
				if !yield(core.BatchItem{Index: i, Err: err}) {
					return
				}
			}
			return
		}
		defer release()
		preps := make([]*prep, len(reqs))
		errs := make([]error, len(reqs))
		for i, req := range reqs {
			preps[i], errs[i] = r.prepareLocked(req)
		}
		if werr := r.planner.WarmBatch(ctx, reqs); werr != nil {
			for i := range reqs {
				if !yield(core.BatchItem{Index: i, Err: werr}) {
					return
				}
			}
			return
		}
		for i := range reqs {
			item := core.BatchItem{Index: i, Err: errs[i]}
			if errs[i] == nil {
				item.Response, item.Err = r.evaluateLocked(ctx, preps[i])
			}
			if !yield(item) {
				return
			}
		}
	}
}
