package shard

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"

	"ust/internal/core"
)

// Router is a sharded engine: it implements the same Evaluate /
// EvaluateSeq / EvaluateBatch surface as core.Engine (core.Evaluator)
// over N shard engines, each owning the slice of the database the
// consistent-hash ring assigns it. Requests fan out concurrently —
// bounded by WithParallelism, with context cancellation propagating to
// every shard — and the result streams merge back into exactly the
// single-engine output: rank-ordered merge for scans, k-way heap merge
// with the engine's tie-break order for top-k.
//
// All shards share one score cache (core.SharedCache), so a chain's
// backward sweep — which depends only on (chain, window, observation
// time), never on which objects a shard holds — is computed once per
// distinct key across the fleet and every other shard hits.
//
// Semantics relative to a single engine over the same database:
//
//   - Results are byte-identical (same float64 bits, same order) for
//     every predicate, strategy and ranking, with one exception: the
//     Monte-Carlo strategy always uses per-object seeding (as if
//     WithParallelism(≥2)), because the serial variant's shared rng
//     stream is inherently a whole-database sequence. Sharded MC is
//     therefore deterministic and independent of the shard count, and
//     matches any single engine run with WithParallelism(≥2).
//   - Response.Cache and Response.Filter sum the shard responses; the
//     shared cache's single-flight keeps the summed Misses equal to
//     the single-engine count (each distinct sweep computes once).
//   - Auto-planned requests are planned once against the full database,
//     so every shard runs the strategy a single engine would have
//     picked; Response.Plans carries those full-database estimates.
//   - Per-object evaluation failures surface deterministically
//     (schedule-independent), and — when a single shard fails — as the
//     single engine's exact error value. With failures on SEVERAL
//     shards the surfaced error is the one anchored at the lowest
//     undecided merge rank, which can name a different poisoned object
//     than the single engine's first-in-emission-order pick. A FAILING
//     EvaluateSeq may also stream fewer results before the error than
//     a single engine would (the failing shard's uncomputed objects
//     cannot be yielded); the prefix is still deterministic for a
//     given shard count.
//
// Ingest goes through Add / ReplaceObject / Observe, which keep the
// full database and the owning shard in step while excluding queries.
// Mutating the underlying database directly is permitted only while no
// query is in flight; the router adopts such out-of-band mutations
// lazily (generation check) before the next evaluation.
type Router struct {
	full    *core.Database
	planner *core.Engine // full-database engine: planning + batch warming
	ring    *Ring
	opts    core.Options
	cache   *core.SharedCache

	// mu serializes ingest/resync (exclusive) against evaluation
	// (shared), mirroring the service layer's per-dataset lock.
	mu      sync.RWMutex
	members []*member
	synced  uint64

	ordMu  sync.Mutex
	orders map[bool]*orderIndex // emission orders, keyed by "insertion order"
}

var _ core.Evaluator = (*Router)(nil)

// member is one shard: its slice of the database plus the engine over
// it. Shard databases share object and chain pointers with the full
// database — objects are immutable, chains are shared by design (score
// cache keys are chain-identity).
type member struct {
	db     *core.Database
	engine *core.Engine
}

// New builds a router over db with the given shard count. Engine
// options apply to every shard; unless opts disables caching
// (CacheBytes < 0) or supplies a shared cache, the router creates one
// SharedCache for the fleet.
func New(db *core.Database, shards int, opts core.Options) (*Router, error) {
	if db == nil {
		return nil, fmt.Errorf("shard: nil database")
	}
	ring, err := NewRing(shards)
	if err != nil {
		return nil, err
	}
	if opts.Cache == nil && opts.CacheBytes >= 0 {
		opts.Cache = core.NewSharedCache(opts.CacheBytes)
	}
	r := &Router{
		full:    db,
		planner: core.NewEngine(db, opts),
		ring:    ring,
		opts:    opts,
		cache:   opts.Cache,
		orders:  map[bool]*orderIndex{},
	}
	for s := 0; s < shards; s++ {
		mdb := core.NewDatabase(db.DefaultChain())
		r.members = append(r.members, &member{db: mdb, engine: core.NewEngine(mdb, opts)})
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r, r.syncLocked()
}

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.members) }

// Database returns the full (unsharded) database the router serves.
func (r *Router) Database() *core.Database { return r.full }

// CacheStats snapshots the fleet-wide shared score cache counters.
func (r *Router) CacheStats() core.CacheStats {
	if r.cache == nil {
		return core.CacheStats{}
	}
	return r.cache.Stats()
}

// syncLocked brings every shard up to the full database's generation:
// each object is routed to its ring owner and added or swapped when its
// pointer changed. Requires r.mu held exclusively.
func (r *Router) syncLocked() error {
	v := r.full.Version()
	if r.synced == v {
		return nil
	}
	for _, o := range r.full.Objects() {
		m := r.members[r.ring.Owner(o.ID)]
		switch cur := m.db.Get(o.ID); {
		case cur == o: // unchanged
		case cur == nil:
			if err := m.db.Add(o); err != nil {
				return err
			}
		default:
			if err := m.db.ReplaceObject(o); err != nil {
				return err
			}
		}
	}
	r.synced = v
	r.ordMu.Lock()
	r.orders = map[bool]*orderIndex{}
	r.ordMu.Unlock()
	return nil
}

// acquire takes the evaluation (shared) lock, first adopting any
// out-of-band database mutations under the exclusive lock.
func (r *Router) acquire() (release func(), err error) {
	for {
		r.mu.RLock()
		if r.synced == r.full.Version() {
			return r.mu.RUnlock, nil
		}
		r.mu.RUnlock()
		r.mu.Lock()
		err := r.syncLocked()
		r.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
}

// --- ingest ---------------------------------------------------------------

// applyLocked routes one just-mutated object to its owning shard and
// stamps the router synced — the O(1) ingest path, sparing the full
// syncLocked rescan when the caller knows exactly what changed.
// Requires r.mu held exclusively and r.synced current BEFORE the full-
// database mutation.
func (r *Router) applyLocked(o *core.Object) error {
	m := r.members[r.ring.Owner(o.ID)]
	var err error
	if m.db.Get(o.ID) == nil {
		err = m.db.Add(o)
	} else {
		err = m.db.ReplaceObject(o)
	}
	if err != nil {
		return err
	}
	r.synced = r.full.Version()
	r.ordMu.Lock()
	r.orders = map[bool]*orderIndex{}
	r.ordMu.Unlock()
	return nil
}

// Add inserts a new object, routing it to its owning shard. Queries are
// excluded for the duration (ingest is exclusive, as in the service
// layer).
func (r *Router) Add(o *core.Object) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.syncLocked(); err != nil {
		return err
	}
	if err := r.full.Add(o); err != nil {
		return err
	}
	return r.applyLocked(o)
}

// ReplaceObject swaps in a new version of an existing object on both
// the full database and its owning shard.
func (r *Router) ReplaceObject(o *core.Object) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.syncLocked(); err != nil {
		return err
	}
	if err := r.full.ReplaceObject(o); err != nil {
		return err
	}
	return r.applyLocked(o)
}

// Observe appends an observation to an existing object — the standing
// ingest primitive, mirroring Monitor.Observe and Service.Observe.
func (r *Router) Observe(objectID int, obs core.Observation) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.syncLocked(); err != nil {
		return err
	}
	o := r.full.Get(objectID)
	if o == nil {
		return fmt.Errorf("shard: unknown object %d", objectID)
	}
	updated, err := o.WithObservation(obs)
	if err != nil {
		return err
	}
	if err := r.full.ReplaceObject(updated); err != nil {
		return err
	}
	return r.applyLocked(updated)
}

// --- evaluation -----------------------------------------------------------

// prep is one request resolved against the router: the strategy a
// single engine would run (planned once, over the full database), the
// request to forward to shards, the emission-order index the merge
// needs, and the fan-out width.
type prep struct {
	req      core.Request
	strategy core.Strategy
	plans    []core.CostEstimate
	// mcOrder selects insertion-order emission (Monte-Carlo) for the
	// merge's order index, fetched lazily by the scan paths — top-k
	// merges never need it.
	mcOrder bool
	topK    int
	workers int
}

// prepareLocked validates and plans the request. Requires the shared
// lock. Request-level errors (malformed predicates, bad windows) are
// returned here, before any fan-out, so they surface exactly as a
// single engine would report them.
func (r *Router) prepareLocked(req core.Request) (*prep, error) {
	st, plans, err := r.planner.PlanRequest(req)
	if err != nil {
		return nil, err
	}
	p := &prep{req: req, strategy: st, plans: plans, topK: req.TopKHint()}
	if req.AutoPlanHint() {
		// Pin every shard to the full-database planner's choice: a
		// shard planning over its own slice could pick differently.
		p.req = p.req.With(core.WithStrategy(st))
	}
	p.mcOrder = st == core.StrategyMonteCarlo
	// An explicit WithParallelism(w) is a total budget, not a per-layer
	// one: it caps the shard fan-out at w and divides the remainder
	// among the shards' own workers, so the router never runs ~w² work
	// at once. Unset (0) and GOMAXPROCS (-1) hints forward unchanged —
	// the fan-out defaults to all shards and the runtime bounds actual
	// parallelism.
	p.workers = len(r.members)
	shardPar := req.ParallelismHint()
	if shardPar > 0 {
		if shardPar < p.workers {
			p.workers = shardPar
		}
		shardPar = max(1, shardPar/p.workers)
		p.req = p.req.With(core.WithParallelism(shardPar))
	}
	if st == core.StrategyMonteCarlo && core.ResolveWorkers(shardPar) < 2 {
		// Per-object seeding (see the Router doc comment): the serial
		// sampler's shared rng stream cannot be partitioned. Shard
		// widths that already resolve to ≥2 workers keep their width —
		// they are per-object-seeded either way.
		p.req = p.req.With(core.WithParallelism(2))
		if w := req.ParallelismHint(); w > 0 {
			// Each shard now runs 2 samplers; shrink the fan-out so the
			// caller's total budget still holds (within the documented
			// MC minimum of 2).
			p.workers = max(1, w/2)
		}
	}
	return p, nil
}

// orderFor returns (building lazily) the emission-order index for the
// current generation. Monte-Carlo streams emit in database insertion
// order; every other strategy emits in chain-group order.
func (r *Router) orderFor(insertion bool) *orderIndex {
	r.ordMu.Lock()
	defer r.ordMu.Unlock()
	if ord := r.orders[insertion]; ord != nil {
		return ord
	}
	ord := buildOrder(r.full, r.members, insertion)
	r.orders[insertion] = ord
	return ord
}

// Evaluate answers the request in one batch: concurrent shard fan-out,
// then a deterministic merge. See the Router doc comment for the exact
// single-engine equivalences.
func (r *Router) Evaluate(ctx context.Context, req core.Request) (*core.Response, error) {
	release, err := r.acquire()
	if err != nil {
		return nil, err
	}
	defer release()
	p, err := r.prepareLocked(req)
	if err != nil {
		return nil, err
	}
	return r.evaluateLocked(ctx, p)
}

func (r *Router) evaluateLocked(ctx context.Context, p *prep) (*core.Response, error) {
	if spec, ok := p.req.AggregateHint(); ok {
		return r.aggregateLocked(ctx, p, spec)
	}
	resps, err := r.fanout(ctx, p)
	if err != nil {
		return nil, r.canonicalError(ctx, p, err)
	}
	resp := &core.Response{Strategy: p.strategy, Plans: p.plans}
	for _, sr := range resps {
		resp.Cache.Hits += sr.Cache.Hits
		resp.Cache.Misses += sr.Cache.Misses
		resp.Filter.Candidates += sr.Filter.Candidates
		resp.Filter.Pruned += sr.Filter.Pruned
		resp.Filter.Refined += sr.Filter.Refined
	}
	if p.topK > 0 {
		lists := make([][]core.Result, len(resps))
		for s, sr := range resps {
			lists[s] = sr.Results
		}
		resp.Results = mergeTopK(p.topK, lists)
	} else {
		resp.Results, err = mergeByRank(r.orderFor(p.mcOrder), resps)
		if err != nil {
			return nil, err
		}
	}
	return resp, nil
}

// aggregateLocked answers an aggregate request: every shard contributes
// its objects' per-object factors (not a shard-local PMF!), the pooled
// factor set is folded by the same canonical convolution tree a single
// engine uses — core.FoldFactors sorts by object ID before folding — so
// the resulting distribution is byte-identical to the unsharded answer
// regardless of shard count. Convolving per-shard PMFs instead would be
// mathematically equal but change the tree shape, and with it the
// float64 rounding.
func (r *Router) aggregateLocked(ctx context.Context, p *prep, spec core.AggSpec) (*core.Response, error) {
	sets, err := r.fanoutFactors(ctx, p)
	if err != nil {
		return nil, err
	}
	resp := &core.Response{Strategy: p.strategy, Plans: p.plans}
	pooled := &core.FactorSet{Strategy: p.strategy}
	for _, fs := range sets {
		pooled.Factors = append(pooled.Factors, fs.Factors...)
		if len(fs.Times) > 0 {
			pooled.Times = fs.Times // identical on every shard: derived from the query window
		}
		resp.Cache.Hits += fs.Cache.Hits
		resp.Cache.Misses += fs.Cache.Misses
		resp.Filter.Candidates += fs.Filter.Candidates
		resp.Filter.Pruned += fs.Filter.Pruned
		resp.Filter.Refined += fs.Filter.Refined
	}
	a, err := core.FoldFactors(spec, pooled)
	if err != nil {
		return nil, err
	}
	resp.Agg = a
	return resp, nil
}

// fanoutFactors collects per-shard aggregate factor sets, at most
// p.workers concurrently — the aggregate twin of fanout. Factors never
// leave the process here; the router's members are in-process engines,
// and remote topologies aggregate behind their own engine instead.
func (r *Router) fanoutFactors(ctx context.Context, p *prep) ([]*core.FactorSet, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	sets := make([]*core.FactorSet, len(r.members))
	errs := make([]error, len(r.members))
	sem := make(chan struct{}, p.workers)
	var wg sync.WaitGroup
	for s, m := range r.members {
		wg.Add(1)
		go func(s int, eng *core.Engine) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				errs[s] = ctx.Err()
				return
			}
			sets[s], errs[s] = eng.AggregateFactors(ctx, p.req)
			if errs[s] != nil {
				cancel()
			}
		}(s, m.engine)
	}
	wg.Wait()
	if err := firstRealError(errs); err != nil {
		return nil, err
	}
	return sets, nil
}

// firstRealError picks the surfaced fan-out error: the first real
// failure by shard index wins, with cancellation-induced errors losing
// to any real one.
func firstRealError(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
	}
	return first
}

// canonicalError turns a fan-out failure into THE deterministic error
// for this request: with several shards failing (or one failure
// cancelling siblings mid-evaluation), fanout's surviving error depends
// on which shard's evaluation got further before the cancel landed.
// Re-deriving the error through the rank-anchored streaming merge —
// whose shard evaluations are never cross-cancelled before their own
// failure surfaces — yields the error at the lowest global emission
// rank, the same one a single engine (and EvaluateSeq) reports. The
// request is re-run without ranking (ranking never changes which
// object errors first); the cost is paid only on the failure path.
func (r *Router) canonicalError(ctx context.Context, p *prep, err error) error {
	if ctx.Err() != nil {
		// Caller-cancelled (or deadline): nothing canonical to derive.
		return err
	}
	scan := *p
	scan.topK = 0
	scan.req = p.req.With(core.WithTopK(0))
	for _, serr := range r.mergeScan(ctx, &scan) {
		if serr != nil {
			return serr
		}
	}
	return err
}

// fanout runs the prepared request on every shard, at most p.workers
// concurrently. A failing shard cancels its siblings; the error it
// returns is canonicalized by the caller (canonicalError) — here the
// first real failure by shard index wins, with cancellation-induced
// errors losing to any real one.
func (r *Router) fanout(ctx context.Context, p *prep) ([]*core.Response, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	resps := make([]*core.Response, len(r.members))
	errs := make([]error, len(r.members))
	sem := make(chan struct{}, p.workers)
	var wg sync.WaitGroup
	for s, m := range r.members {
		wg.Add(1)
		go func(s int, eng *core.Engine) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				errs[s] = ctx.Err()
				return
			}
			resps[s], errs[s] = eng.Evaluate(ctx, p.req)
			if errs[s] != nil {
				cancel()
			}
		}(s, m.engine)
	}
	wg.Wait()
	if err := firstRealError(errs); err != nil {
		return nil, err
	}
	return resps, nil
}

// EvaluateSeq streams the merged results one object at a time, in the
// single engine's emission order. Breaking out of the loop cancels
// every shard stream.
func (r *Router) EvaluateSeq(ctx context.Context, req core.Request) iter.Seq2[core.Result, error] {
	return func(yield func(core.Result, error) bool) {
		release, err := r.acquire()
		if err != nil {
			yield(core.Result{}, err)
			return
		}
		defer release()
		p, err := r.prepareLocked(req)
		if err != nil {
			yield(core.Result{}, err)
			return
		}
		if _, ok := req.AggregateHint(); ok {
			// Same sentinel as Engine.EvaluateSeq: one distribution is
			// not a result stream.
			yield(core.Result{}, core.ErrAggregateStream)
			return
		}
		if p.topK > 0 {
			// Ranked requests need the full pass anyway; materialize
			// like Engine.EvaluateSeq does, then stream the ranked tail.
			resp, rerr := r.evaluateLocked(ctx, p)
			if rerr != nil {
				yield(core.Result{}, rerr)
				return
			}
			for _, res := range resp.Results {
				if !yield(res, nil) {
					return
				}
			}
			return
		}
		r.mergeScan(ctx, p)(yield)
	}
}

// EvaluateBatch answers every request, one merged Response per request
// in input order, aborting on the first per-request error (lowest index
// wins) — the Engine.EvaluateBatch contract.
func (r *Router) EvaluateBatch(ctx context.Context, reqs []core.Request) ([]*core.Response, error) {
	out := make([]*core.Response, len(reqs))
	for item := range r.EvaluateBatchSeq(ctx, reqs) {
		if item.Err != nil {
			return nil, item.Err
		}
		out[item.Index] = item.Response
	}
	return out, nil
}

// EvaluateBatchSeq streams batch outcomes in input order with per-item
// error routing: one malformed request does not poison the rest. The
// batch's distinct sweeps are warmed ONCE, by the fused kernels of a
// full-database engine publishing into the shared cache, so the
// per-shard evaluations all hit instead of warming N times.
func (r *Router) EvaluateBatchSeq(ctx context.Context, reqs []core.Request) iter.Seq[core.BatchItem] {
	return func(yield func(core.BatchItem) bool) {
		release, err := r.acquire()
		if err != nil {
			for i := range reqs {
				if !yield(core.BatchItem{Index: i, Err: err}) {
					return
				}
			}
			return
		}
		defer release()
		preps := make([]*prep, len(reqs))
		errs := make([]error, len(reqs))
		for i, req := range reqs {
			preps[i], errs[i] = r.prepareLocked(req)
		}
		if werr := r.planner.WarmBatch(ctx, reqs); werr != nil {
			for i := range reqs {
				if !yield(core.BatchItem{Index: i, Err: werr}) {
					return
				}
			}
			return
		}
		for i := range reqs {
			item := core.BatchItem{Index: i, Err: errs[i]}
			if errs[i] == nil {
				item.Response, item.Err = r.evaluateLocked(ctx, preps[i])
			}
			if !yield(item) {
				return
			}
		}
	}
}
