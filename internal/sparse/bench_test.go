package sparse

import (
	"fmt"
	"math/rand"
	"testing"
)

// Micro-benchmarks for the kernels every query reduces to. The
// dimensions mirror the query engine's hot path: a few thousand states,
// short rows (Table I spreads), and forward vectors of varying density.

func benchMatrix(b *testing.B, n, rowNNZ int) *CSR {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	return randomStochastic(rng, n, rowNNZ)
}

func BenchmarkVecMatSparseVector(b *testing.B) {
	for _, supp := range []int{5, 100, 2000} {
		m := benchMatrix(b, 10000, 5)
		x := NewVec(10000)
		rng := rand.New(rand.NewSource(2))
		for x.NNZ() < supp {
			x.Set(rng.Intn(10000), rng.Float64())
		}
		dst := NewVec(10000)
		b.Run(fmt.Sprintf("support=%d", supp), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				VecMat(dst, x, m)
			}
		})
	}
}

func BenchmarkMatVecDense(b *testing.B) {
	m := benchMatrix(b, 10000, 5)
	x := NewVec(10000)
	for i := 0; i < 10000; i++ {
		x.Set(i, 1.0/10000)
	}
	dst := NewVec(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatVec(dst, m, x)
	}
}

func BenchmarkTranspose(b *testing.B) {
	m := benchMatrix(b, 10000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Transpose()
	}
}

func BenchmarkMatMulSmall(b *testing.B) {
	m := benchMatrix(b, 500, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(m, m)
	}
}

func BenchmarkVecDotSparseDense(b *testing.B) {
	dense := NewVec(10000)
	for i := 0; i < 10000; i++ {
		dense.Set(i, 0.5)
	}
	sp := NewVec(10000)
	rng := rand.New(rand.NewSource(3))
	for sp.NNZ() < 5 {
		sp.Set(rng.Intn(10000), rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Dot(dense)
	}
}

func BenchmarkBuilderBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	bl := NewBuilder(5000, 5000)
	for i := 0; i < 25000; i++ {
		bl.Add(rng.Intn(5000), rng.Intn(5000), rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl.Build()
	}
}
