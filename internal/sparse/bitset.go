package sparse

import (
	"fmt"
	"math/bits"
)

// Bitset is a fixed-size set of state ids, packed 64 per word. It is the
// boolean companion of Vec: where a Vec carries probability mass per
// state, a Bitset carries only *support* — "can any mass be here at
// all?". The filter stage of filter–refine query evaluation propagates
// supports instead of mass, which costs one bit-op where the exact sweep
// costs a multiply-add, and prunes objects before any exact work runs.
//
// The zero value is not usable; construct with NewBitset.
type Bitset struct {
	n     int
	words []uint64
}

// NewBitset returns an empty set over the universe {0, …, n−1}.
func NewBitset(n int) *Bitset {
	if n < 0 {
		panic("sparse: negative bitset dimension")
	}
	return &Bitset{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the universe size n.
func (b *Bitset) Len() int { return b.n }

// Words returns the number of backing 64-bit words (for cost models).
func (b *Bitset) Words() int { return len(b.words) }

// Set adds i to the set.
func (b *Bitset) Set(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("sparse: Bitset.Set(%d) out of range [0,%d)", i, b.n))
	}
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear removes i from the set.
func (b *Bitset) Clear(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("sparse: Bitset.Clear(%d) out of range [0,%d)", i, b.n))
	}
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Has reports whether i is in the set.
func (b *Bitset) Has(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Reset empties the set, reusing storage.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += popcount(w)
	}
	return c
}

// Any reports whether the set is non-empty.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (b *Bitset) Clone() *Bitset {
	return &Bitset{n: b.n, words: append([]uint64(nil), b.words...)}
}

// CopyFrom overwrites b with the contents of o (same universe required).
func (b *Bitset) CopyFrom(o *Bitset) {
	b.check(o)
	copy(b.words, o.words)
}

// Or unions o into b.
func (b *Bitset) Or(o *Bitset) {
	b.check(o)
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// And intersects b with o.
func (b *Bitset) And(o *Bitset) {
	b.check(o)
	for i, w := range o.words {
		b.words[i] &= w
	}
}

// Equal reports whether b and o hold the same set.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i, w := range o.words {
		if b.words[i] != w {
			return false
		}
	}
	return true
}

// Range calls fn for every member in ascending order.
func (b *Bitset) Range(fn func(i int)) {
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			bit := trailingZeros(w)
			fn(base + bit)
			w &= w - 1
		}
	}
}

func (b *Bitset) check(o *Bitset) {
	if b.n != o.n {
		panic(fmt.Sprintf("sparse: bitset dimension mismatch %d != %d", b.n, o.n))
	}
}

// MassOn returns the total mass of v on the member states: Σ_{i ∈ b} v[i].
// It drives the filter stage's bound computation: the mass of an initial
// distribution on a reachability envelope is an upper bound on the query
// probability.
func (b *Bitset) MassOn(v *Vec) float64 {
	if v.Len() != b.n {
		panic(fmt.Sprintf("sparse: MassOn dimension mismatch %d != %d", v.Len(), b.n))
	}
	s := 0.0
	v.Range(func(i int, x float64) {
		if b.Has(i) {
			s += x
		}
	})
	return s
}

// BoolVecMat computes the boolean row-vector product dst = x · M over the
// (∨, ∧) semiring: dst[j] is set iff some i ∈ x has M[i,j] ≠ 0. It is the
// support shadow of VecMat and costs one branch-free bit-set per touched
// non-zero. dst is reset first and must not alias x.
func BoolVecMat(dst, x *Bitset, m *CSR) {
	if x.Len() != m.Rows() {
		panic(fmt.Sprintf("sparse: BoolVecMat dimension mismatch: set %d, matrix %dx%d", x.Len(), m.Rows(), m.Cols()))
	}
	if dst.Len() != m.Cols() {
		panic(fmt.Sprintf("sparse: BoolVecMat destination length %d != %d columns", dst.Len(), m.Cols()))
	}
	if dst == x {
		panic("sparse: BoolVecMat dst must not alias x")
	}
	dst.Reset()
	x.Range(func(i int) {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			j := m.colIdx[k]
			dst.words[j>>6] |= 1 << (uint(j) & 63)
		}
	})
}

// BoolMatVecAll computes dst[i] = 1 iff row i of M is non-empty and every
// column j with M[i,j] ≠ 0 has x[j] set — the universal (all-successors)
// companion of BoolVecMat, used to propagate "every trajectory from here
// hits the region" certainty backward. Empty rows (dangling states) are
// conservatively excluded. dst is reset first and must not alias x.
func BoolMatVecAll(dst, x *Bitset, m *CSR) {
	if x.Len() != m.Cols() {
		panic(fmt.Sprintf("sparse: BoolMatVecAll dimension mismatch: set %d, matrix %dx%d", x.Len(), m.Rows(), m.Cols()))
	}
	if dst.Len() != m.Rows() {
		panic(fmt.Sprintf("sparse: BoolMatVecAll destination length %d != %d rows", dst.Len(), m.Rows()))
	}
	if dst == x {
		panic("sparse: BoolMatVecAll dst must not alias x")
	}
	dst.Reset()
	for i := 0; i < m.rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		if lo == hi {
			continue
		}
		all := true
		for k := lo; k < hi; k++ {
			if !x.Has(m.colIdx[k]) {
				all = false
				break
			}
		}
		if all {
			dst.Set(i)
		}
	}
}

func popcount(w uint64) int      { return bits.OnesCount64(w) }
func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }
