package sparse

import (
	"math/rand"
	"testing"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Any() || b.Count() != 0 {
		t.Fatalf("new bitset not empty")
	}
	for _, i := range []int{0, 63, 64, 65, 129} {
		b.Set(i)
	}
	if got := b.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if !b.Has(64) || b.Has(1) {
		t.Fatalf("membership wrong")
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 4 {
		t.Fatalf("Clear failed")
	}
	var got []int
	b.Range(func(i int) { got = append(got, i) })
	want := []int{0, 63, 65, 129}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
	c := b.Clone()
	if !c.Equal(b) {
		t.Fatalf("Clone not equal")
	}
	c.Set(1)
	if c.Equal(b) {
		t.Fatalf("Equal ignored a differing bit")
	}
	b.Reset()
	if b.Any() {
		t.Fatalf("Reset left bits behind")
	}
}

func TestBitsetSetOps(t *testing.T) {
	a, b := NewBitset(100), NewBitset(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	u := a.Clone()
	u.Or(b)
	x := a.Clone()
	x.And(b)
	for i := 0; i < 100; i++ {
		if u.Has(i) != (i%2 == 0 || i%3 == 0) {
			t.Fatalf("Or wrong at %d", i)
		}
		if x.Has(i) != (i%6 == 0) {
			t.Fatalf("And wrong at %d", i)
		}
	}
}

func TestBitsetMassOn(t *testing.T) {
	v := NewVec(10)
	v.Set(1, 0.25)
	v.Set(4, 0.5)
	v.Set(9, 0.25)
	b := NewBitset(10)
	b.Set(4)
	b.Set(9)
	if got := b.MassOn(v); got != 0.75 {
		t.Fatalf("MassOn = %g, want 0.75", got)
	}
}

// TestBoolVecMatMatchesVecMat pins the boolean product to the support of
// the float product on random sparse matrices.
func TestBoolVecMatMatchesVecMat(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		bld := NewBuilder(n, n)
		for i := 0; i < n; i++ {
			deg := 1 + rng.Intn(4)
			for d := 0; d < deg; d++ {
				bld.Add(i, rng.Intn(n), 0.1+rng.Float64())
			}
		}
		m := bld.Build()

		x := NewVec(n)
		bx := NewBitset(n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.3 {
				x.Set(i, rng.Float64()+0.1)
				bx.Set(i)
			}
		}
		want := NewVec(n)
		VecMat(want, x, m)
		got := NewBitset(n)
		BoolVecMat(got, bx, m)
		for i := 0; i < n; i++ {
			if got.Has(i) != (want.At(i) != 0) {
				t.Fatalf("trial %d: BoolVecMat[%d] = %v, float product %g", trial, i, got.Has(i), want.At(i))
			}
		}
	}
}

func TestBoolMatVecAll(t *testing.T) {
	// Row 0 → {1,2}, row 1 → {2}, row 2 → {} (dangling).
	m := FromDense([][]float64{
		{0, 0.5, 0.5},
		{0, 0, 1},
		{0, 0, 0},
	})
	x := NewBitset(3)
	x.Set(2)
	dst := NewBitset(3)
	BoolMatVecAll(dst, x, m)
	// Row 1's only successor is 2 ∈ x; row 0 also needs 1 ∉ x; row 2 is
	// dangling and conservatively excluded.
	if dst.Has(0) || !dst.Has(1) || dst.Has(2) {
		t.Fatalf("BoolMatVecAll = {0:%v 1:%v 2:%v}, want {false true false}",
			dst.Has(0), dst.Has(1), dst.Has(2))
	}
	x.Set(1)
	BoolMatVecAll(dst, x, m)
	if !dst.Has(0) || !dst.Has(1) || dst.Has(2) {
		t.Fatalf("after adding 1: got {0:%v 1:%v 2:%v}, want {true true false}",
			dst.Has(0), dst.Has(1), dst.Has(2))
	}
}

func TestVecPoolReuse(t *testing.T) {
	var p VecPool
	v := p.Get(16)
	v.Set(3, 1)
	p.Put(v)
	w := p.Get(16)
	if w.NNZ() != 0 || w.Sum() != 0 {
		t.Fatalf("pooled vector not zeroed: %v", w)
	}
	// Different dimension must not hand back the same backing array.
	u := p.Get(8)
	if u.Len() != 8 {
		t.Fatalf("Get(8).Len() = %d", u.Len())
	}
	var nilPool *VecPool
	nv := nilPool.Get(4)
	if nv.Len() != 4 {
		t.Fatalf("nil pool Get failed")
	}
	nilPool.Put(nv) // must not panic
}
