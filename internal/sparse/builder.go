package sparse

import (
	"fmt"
	"sort"
)

// Builder accumulates coordinate-format (COO) entries and assembles them
// into a CSR matrix. Duplicate coordinates are summed, which makes the
// builder convenient for graph-derived matrices where parallel edges can
// occur.
type Builder struct {
	rows, cols int
	entries    []cooEntry
}

type cooEntry struct {
	i, j int
	x    float64
}

// NewBuilder returns a builder for a rows×cols matrix.
func NewBuilder(rows, cols int) *Builder {
	if rows < 0 || cols < 0 {
		panic("sparse: negative matrix dimension")
	}
	return &Builder{rows: rows, cols: cols}
}

// Add accumulates x at coordinate (i, j). Zero values are dropped.
func (b *Builder) Add(i, j int, x float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: Add(%d,%d) out of bounds for %dx%d builder", i, j, b.rows, b.cols))
	}
	if x == 0 {
		return
	}
	b.entries = append(b.entries, cooEntry{i, j, x})
}

// NNZ returns the number of accumulated (possibly duplicate) entries.
func (b *Builder) NNZ() int { return len(b.entries) }

// Build assembles the CSR matrix. The builder can be reused afterwards;
// its accumulated entries are retained.
func (b *Builder) Build() *CSR {
	sort.Slice(b.entries, func(p, q int) bool {
		if b.entries[p].i != b.entries[q].i {
			return b.entries[p].i < b.entries[q].i
		}
		return b.entries[p].j < b.entries[q].j
	})
	m := &CSR{rows: b.rows, cols: b.cols, rowPtr: make([]int, b.rows+1)}
	lastRow := -1
	for _, e := range b.entries {
		if n := len(m.vals); n > 0 && lastRow == e.i && m.colIdx[n-1] == e.j {
			// Duplicate coordinate (adjacent after sort): fold together.
			m.vals[n-1] += e.x
			continue
		}
		m.colIdx = append(m.colIdx, e.j)
		m.vals = append(m.vals, e.x)
		m.rowPtr[e.i+1]++
		lastRow = e.i
	}
	// Convert per-row counts into prefix sums.
	for i := 0; i < b.rows; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	return m
}

// FromRows builds a CSR directly from per-row (column, value) pairs. Each
// row's columns must be unique; they need not be sorted. This is the fast
// path used by the dataset generators, avoiding the COO sort.
func FromRows(rows, cols int, row func(i int) (idx []int, vals []float64)) *CSR {
	m := &CSR{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	type pair struct {
		j int
		x float64
	}
	var scratch []pair
	for i := 0; i < rows; i++ {
		idx, vals := row(i)
		if len(idx) != len(vals) {
			panic(fmt.Sprintf("sparse: FromRows row %d has %d indices but %d values", i, len(idx), len(vals)))
		}
		scratch = scratch[:0]
		for k, j := range idx {
			if j < 0 || j >= cols {
				panic(fmt.Sprintf("sparse: FromRows row %d column %d out of bounds", i, j))
			}
			if vals[k] == 0 {
				continue
			}
			scratch = append(scratch, pair{j, vals[k]})
		}
		sort.Slice(scratch, func(p, q int) bool { return scratch[p].j < scratch[q].j })
		for k := 1; k < len(scratch); k++ {
			if scratch[k].j == scratch[k-1].j {
				panic(fmt.Sprintf("sparse: FromRows row %d has duplicate column %d", i, scratch[k].j))
			}
		}
		for _, p := range scratch {
			m.colIdx = append(m.colIdx, p.j)
			m.vals = append(m.vals, p.x)
		}
		m.rowPtr[i+1] = len(m.vals)
	}
	return m
}

// FromDense builds a CSR from a dense row-major matrix; zeros are dropped.
// Intended for tests and the paper's worked examples.
func FromDense(d [][]float64) *CSR {
	rows := len(d)
	cols := 0
	if rows > 0 {
		cols = len(d[0])
	}
	for i, r := range d {
		if len(r) != cols {
			panic(fmt.Sprintf("sparse: FromDense ragged row %d (%d != %d)", i, len(r), cols))
		}
	}
	return FromRows(rows, cols, func(i int) ([]int, []float64) {
		var idx []int
		var vals []float64
		for j, x := range d[i] {
			if x != 0 {
				idx = append(idx, j)
				vals = append(vals, x)
			}
		}
		return idx, vals
	})
}

// Identity returns the n×n identity matrix.
func Identity(n int) *CSR {
	return FromRows(n, n, func(i int) ([]int, []float64) {
		return []int{i}, []float64{1}
	})
}
