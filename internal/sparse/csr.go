package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// CSR is an immutable compressed-sparse-row matrix.
//
// Rows point into the Cols/Vals arrays via RowPtr: the non-zeros of row i
// live at positions RowPtr[i]..RowPtr[i+1]. Column indices within a row
// are sorted ascending and unique. CSR values are float64 and may be any
// finite number; the query engine only ever stores probabilities.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// Dims returns the number of rows and columns.
func (m *CSR) Dims() (rows, cols int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// RowNNZ returns the number of stored entries in row i.
func (m *CSR) RowNNZ(i int) int { return m.rowPtr[i+1] - m.rowPtr[i] }

// At returns the entry at (i, j), zero when not stored. Lookup is a binary
// search within the row.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("sparse: At(%d,%d) out of bounds for %dx%d matrix", i, j, m.rows, m.cols))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], j)
	if k < hi && m.colIdx[k] == j {
		return m.vals[k]
	}
	return 0
}

// Row calls fn for every stored entry (j, value) of row i in ascending
// column order.
func (m *CSR) Row(i int, fn func(j int, x float64)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		fn(m.colIdx[k], m.vals[k])
	}
}

// RowSlices returns the column-index and value slices backing row i.
// Callers must not mutate them.
func (m *CSR) RowSlices(i int) (cols []int, vals []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.vals[lo:hi]
}

// RowSum returns Σ_j m[i,j].
func (m *CSR) RowSum(i int) float64 {
	s := 0.0
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		s += m.vals[k]
	}
	return s
}

// Transpose returns a new CSR holding mᵀ. The construction is the classic
// two-pass counting transpose and runs in O(nnz + rows + cols).
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		rows:   m.cols,
		cols:   m.rows,
		rowPtr: make([]int, m.cols+1),
		colIdx: make([]int, m.NNZ()),
		vals:   make([]float64, m.NNZ()),
	}
	// Count entries per column of m (= per row of t).
	for _, j := range m.colIdx {
		t.rowPtr[j+1]++
	}
	for j := 0; j < m.cols; j++ {
		t.rowPtr[j+1] += t.rowPtr[j]
	}
	// Scatter. next[j] tracks the insertion cursor for t's row j.
	next := append([]int(nil), t.rowPtr[:m.cols]...)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			j := m.colIdx[k]
			p := next[j]
			t.colIdx[p] = i
			t.vals[p] = m.vals[k]
			next[j]++
		}
	}
	// Rows of t are filled in ascending i order, so columns are sorted.
	return t
}

// Clone returns a deep copy of m.
func (m *CSR) Clone() *CSR {
	return &CSR{
		rows:   m.rows,
		cols:   m.cols,
		rowPtr: append([]int(nil), m.rowPtr...),
		colIdx: append([]int(nil), m.colIdx...),
		vals:   append([]float64(nil), m.vals...),
	}
}

// Dense expands m into a freshly allocated row-major dense matrix,
// intended for tests and tiny examples only.
func (m *CSR) Dense() [][]float64 {
	out := make([][]float64, m.rows)
	flat := make([]float64, m.rows*m.cols)
	for i := range out {
		out[i] = flat[i*m.cols : (i+1)*m.cols]
		m.Row(i, func(j int, x float64) { out[i][j] = x })
	}
	return out
}

// Equal reports whether m and o describe the same matrix within tol.
func (m *CSR) Equal(o *CSR, tol float64) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		mc, mv := m.RowSlices(i)
		oc, ov := o.RowSlices(i)
		// Merge-compare the two sorted rows, treating missing as zero.
		a, b := 0, 0
		for a < len(mc) || b < len(oc) {
			switch {
			case b >= len(oc) || (a < len(mc) && mc[a] < oc[b]):
				if math.Abs(mv[a]) > tol {
					return false
				}
				a++
			case a >= len(mc) || oc[b] < mc[a]:
				if math.Abs(ov[b]) > tol {
					return false
				}
				b++
			default:
				if math.Abs(mv[a]-ov[b]) > tol {
					return false
				}
				a++
				b++
			}
		}
	}
	return true
}

// ScaleRows returns a copy of m with row i multiplied by f(i).
func (m *CSR) ScaleRows(f func(i int) float64) *CSR {
	out := m.Clone()
	for i := 0; i < out.rows; i++ {
		c := f(i)
		for k := out.rowPtr[i]; k < out.rowPtr[i+1]; k++ {
			out.vals[k] *= c
		}
	}
	return out
}

// MaskColumns returns a copy of m with every stored entry whose column j
// has keep(j) == false removed. Used to build the paper's M′ matrix
// (columns of the query region zeroed).
func (m *CSR) MaskColumns(keep func(j int) bool) *CSR {
	out := &CSR{rows: m.rows, cols: m.cols, rowPtr: make([]int, m.rows+1)}
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			if keep(m.colIdx[k]) {
				out.colIdx = append(out.colIdx, m.colIdx[k])
				out.vals = append(out.vals, m.vals[k])
			}
		}
		out.rowPtr[i+1] = len(out.vals)
	}
	return out
}

// ErrNotStochastic is returned by CheckStochastic for matrices whose rows
// do not form probability distributions.
var ErrNotStochastic = errors.New("sparse: matrix is not row-stochastic")

// CheckStochastic verifies that every entry is non-negative and every row
// sums to 1 within tol. It returns a descriptive error wrapping
// ErrNotStochastic on the first violation.
func (m *CSR) CheckStochastic(tol float64) error {
	if m.rows != m.cols {
		return fmt.Errorf("%w: %dx%d is not square", ErrNotStochastic, m.rows, m.cols)
	}
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			if m.vals[k] < 0 {
				return fmt.Errorf("%w: negative entry %g at (%d,%d)", ErrNotStochastic, m.vals[k], i, m.colIdx[k])
			}
			s += m.vals[k]
		}
		if math.Abs(s-1) > tol {
			return fmt.Errorf("%w: row %d sums to %g", ErrNotStochastic, i, s)
		}
	}
	return nil
}

// NormalizeRows returns a copy of m with every non-empty row rescaled to
// sum to one. Empty rows are left empty (callers decide how to handle
// absorbing/dangling states).
func (m *CSR) NormalizeRows() *CSR {
	out := m.Clone()
	for i := 0; i < out.rows; i++ {
		s := out.RowSum(i)
		if s == 0 {
			continue
		}
		for k := out.rowPtr[i]; k < out.rowPtr[i+1]; k++ {
			out.vals[k] /= s
		}
	}
	return out
}

// String renders small matrices densely for debugging; larger matrices
// render as a summary line.
func (m *CSR) String() string {
	if m.rows*m.cols > 10000 {
		return fmt.Sprintf("CSR{%dx%d, nnz=%d}", m.rows, m.cols, m.NNZ())
	}
	out := ""
	d := m.Dense()
	for _, row := range d {
		out += fmt.Sprintf("%v\n", row)
	}
	return out
}
