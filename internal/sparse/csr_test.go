package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperChain is the running-example Markov chain from Section V of the
// paper.
func paperChain() *CSR {
	return FromDense([][]float64{
		{0, 0, 1},
		{0.6, 0, 0.4},
		{0, 0.8, 0.2},
	})
}

func TestFromDenseAndAt(t *testing.T) {
	m := paperChain()
	if r, c := m.Dims(); r != 3 || c != 3 {
		t.Fatalf("Dims = %dx%d, want 3x3", r, c)
	}
	if m.NNZ() != 5 {
		t.Fatalf("NNZ = %d, want 5", m.NNZ())
	}
	cases := []struct {
		i, j int
		want float64
	}{
		{0, 0, 0}, {0, 2, 1}, {1, 0, 0.6}, {1, 2, 0.4}, {2, 1, 0.8}, {2, 2, 0.2},
	}
	for _, c := range cases {
		if got := m.At(c.i, c.j); got != c.want {
			t.Errorf("At(%d,%d) = %g, want %g", c.i, c.j, got, c.want)
		}
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of bounds did not panic")
		}
	}()
	paperChain().At(3, 0)
}

func TestRowIterationSorted(t *testing.T) {
	m := paperChain()
	var cols []int
	m.Row(1, func(j int, _ float64) { cols = append(cols, j) })
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 {
		t.Errorf("Row(1) columns = %v, want [0 2]", cols)
	}
	if m.RowNNZ(1) != 2 {
		t.Errorf("RowNNZ(1) = %d, want 2", m.RowNNZ(1))
	}
}

func TestRowSum(t *testing.T) {
	m := paperChain()
	for i := 0; i < 3; i++ {
		if s := m.RowSum(i); math.Abs(s-1) > 1e-15 {
			t.Errorf("RowSum(%d) = %g, want 1", i, s)
		}
	}
}

func TestTranspose(t *testing.T) {
	m := paperChain()
	mt := m.Transpose()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Errorf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeRectangular(t *testing.T) {
	m := FromDense([][]float64{
		{1, 0, 2, 0},
		{0, 3, 0, 0},
	})
	mt := m.Transpose()
	if r, c := mt.Dims(); r != 4 || c != 2 {
		t.Fatalf("transpose dims = %dx%d, want 4x2", r, c)
	}
	if mt.At(2, 0) != 2 || mt.At(1, 1) != 3 {
		t.Error("transpose values wrong")
	}
}

func TestTransposeInvolutionQuick(t *testing.T) {
	f := func(seed int64) bool {
		m := randomCSR(rand.New(rand.NewSource(seed)), 13, 7, 0.3)
		return m.Transpose().Transpose().Equal(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependent(t *testing.T) {
	m := paperChain()
	c := m.Clone()
	c.vals[0] = 99
	if m.vals[0] == 99 {
		t.Error("Clone shares value storage")
	}
}

func TestEqual(t *testing.T) {
	m := paperChain()
	if !m.Equal(m.Clone(), 0) {
		t.Error("matrix not Equal to its clone")
	}
	other := FromDense([][]float64{
		{0, 0, 1},
		{0.6, 0, 0.4},
		{0, 0.8, 0.3},
	})
	if m.Equal(other, 1e-9) {
		t.Error("different matrices reported Equal")
	}
	if !m.Equal(other, 0.2) {
		t.Error("Equal ignores tolerance")
	}
	if m.Equal(Identity(4), 1) {
		t.Error("Equal ignores dimensions")
	}
}

func TestEqualExplicitZeroVsMissing(t *testing.T) {
	// A stored zero must compare equal to a structurally missing zero.
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	b.Add(0, 1, 1e-30)
	m1 := b.Build()
	m2 := FromDense([][]float64{{1, 0}, {0, 0}})
	if !m1.Equal(m2, 1e-20) {
		t.Error("near-zero stored entry should compare equal to missing entry")
	}
}

func TestMaskColumns(t *testing.T) {
	m := paperChain()
	// Zero columns {1, 2}: M' for query region S = {s2, s3}.
	masked := m.MaskColumns(func(j int) bool { return j != 1 && j != 2 })
	want := FromDense([][]float64{
		{0, 0, 0},
		{0.6, 0, 0},
		{0, 0, 0},
	})
	if !masked.Equal(want, 0) {
		t.Errorf("MaskColumns result:\n%v\nwant:\n%v", masked, want)
	}
	// Removed mass per row equals RowSum(original) - RowSum(masked).
	if got := m.RowSum(0) - masked.RowSum(0); got != 1 {
		t.Errorf("removed mass row 0 = %g, want 1", got)
	}
}

func TestCheckStochastic(t *testing.T) {
	if err := paperChain().CheckStochastic(1e-12); err != nil {
		t.Errorf("paper chain should be stochastic: %v", err)
	}
	bad := FromDense([][]float64{{0.5, 0.4}, {1, 0}})
	err := bad.CheckStochastic(1e-12)
	if !errors.Is(err, ErrNotStochastic) {
		t.Errorf("expected ErrNotStochastic, got %v", err)
	}
	neg := FromDense([][]float64{{1.5, -0.5}, {0, 1}})
	if err := neg.CheckStochastic(1e-12); !errors.Is(err, ErrNotStochastic) {
		t.Errorf("negative entry not rejected: %v", err)
	}
	rect := FromDense([][]float64{{1, 0}})
	if err := rect.CheckStochastic(1e-12); !errors.Is(err, ErrNotStochastic) {
		t.Errorf("non-square not rejected: %v", err)
	}
}

func TestNormalizeRows(t *testing.T) {
	m := FromDense([][]float64{
		{2, 2},
		{0, 0},
	})
	n := m.NormalizeRows()
	if n.At(0, 0) != 0.5 || n.At(0, 1) != 0.5 {
		t.Error("NormalizeRows wrong on non-empty row")
	}
	if n.RowNNZ(1) != 0 {
		t.Error("NormalizeRows should leave empty rows empty")
	}
}

func TestScaleRows(t *testing.T) {
	m := paperChain().ScaleRows(func(i int) float64 { return float64(i + 1) })
	if m.At(1, 0) != 1.2 {
		t.Errorf("ScaleRows: At(1,0) = %g, want 1.2", m.At(1, 0))
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	if err := id.CheckStochastic(0); err != nil {
		t.Errorf("identity not stochastic: %v", err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Errorf("Identity At(%d,%d) = %g", i, j, id.At(i, j))
			}
		}
	}
}

func TestDenseRoundTrip(t *testing.T) {
	m := paperChain()
	back := FromDense(m.Dense())
	if !m.Equal(back, 0) {
		t.Error("Dense -> FromDense round trip mismatch")
	}
}

// randomCSR produces a random matrix with the given fill probability.
// Values are strictly positive to respect the non-negativity contract of
// the vector kernels.
func randomCSR(rng *rand.Rand, rows, cols int, fill float64) *CSR {
	b := NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < fill {
				b.Add(i, j, rng.Float64()+0.01)
			}
		}
	}
	return b.Build()
}

// randomStochastic produces a random row-stochastic matrix where each row
// has between 1 and maxOut entries.
func randomStochastic(rng *rand.Rand, n, maxOut int) *CSR {
	return FromRows(n, n, func(i int) ([]int, []float64) {
		k := 1 + rng.Intn(maxOut)
		seen := map[int]bool{}
		var idx []int
		for len(idx) < k {
			j := rng.Intn(n)
			if !seen[j] {
				seen[j] = true
				idx = append(idx, j)
			}
		}
		vals := make([]float64, len(idx))
		s := 0.0
		for p := range vals {
			vals[p] = rng.Float64() + 1e-3
			s += vals[p]
		}
		for p := range vals {
			vals[p] /= s
		}
		return idx, vals
	})
}

func TestCSRString(t *testing.T) {
	small := paperChain()
	if s := small.String(); len(s) == 0 {
		t.Error("small String empty")
	}
	big := Identity(200)
	s := big.String()
	if s != "CSR{200x200, nnz=200}" {
		t.Errorf("large String = %q", s)
	}
}

func TestBuilderNNZAndReuse(t *testing.T) {
	b := NewBuilder(2, 2)
	if b.NNZ() != 0 {
		t.Error("fresh builder NNZ != 0")
	}
	b.Add(0, 0, 1)
	b.Add(0, 0, 1)
	if b.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2 (pre-dedupe)", b.NNZ())
	}
	first := b.Build()
	second := b.Build()
	if !first.Equal(second, 0) {
		t.Error("Build is not repeatable")
	}
}

func TestNewBuilderNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative builder dims did not panic")
		}
	}()
	NewBuilder(-1, 2)
}
