package sparse

import (
	"math"
	"testing"
)

// FuzzBuilderCSR drives the COO builder with arbitrary entry streams and
// checks the structural invariants every consumer of CSR relies on:
//
//   - rowPtr is monotone, starts at 0 and ends at NNZ,
//   - column indices within every row are sorted and unique,
//   - duplicate coordinates are folded by summation (At matches a
//     reference accumulation map),
//   - Transpose round-trips,
//   - NormalizeRows yields rows summing to 1 (the stochastic check the
//     markov layer builds on).
func FuzzBuilderCSR(f *testing.F) {
	f.Add([]byte{3, 3, 0, 0, 1, 1, 1, 2, 0, 0, 3})
	f.Add([]byte{1, 1, 0, 0, 200})
	f.Add([]byte{8, 5, 7, 4, 9, 0, 0, 1, 7, 4, 9, 3, 2, 250})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		rows := 1 + int(data[0])%24
		cols := 1 + int(data[1])%24
		data = data[2:]

		b := NewBuilder(rows, cols)
		ref := map[[2]int]float64{}
		for len(data) >= 3 {
			i := int(data[0]) % rows
			j := int(data[1]) % cols
			x := float64(data[2]) / 16 // non-negative, representable
			data = data[3:]
			b.Add(i, j, x)
			if x != 0 {
				ref[[2]int{i, j}] += x
			}
		}
		m := b.Build()

		checkCSRInvariants(t, m, rows, cols)

		// Values: every coordinate matches the reference accumulation.
		for ij, want := range ref {
			if got := m.At(ij[0], ij[1]); math.Abs(got-want) > 1e-9 {
				t.Fatalf("At(%d,%d) = %g, want %g", ij[0], ij[1], got, want)
			}
		}
		nnzWant := 0
		for _, v := range ref {
			if v != 0 {
				nnzWant++
			}
		}
		if m.NNZ() != nnzWant {
			t.Fatalf("NNZ = %d, want %d", m.NNZ(), nnzWant)
		}

		// Transpose preserves structure and round-trips.
		tr := m.Transpose()
		checkCSRInvariants(t, tr, cols, rows)
		if !tr.Transpose().Equal(m, 0) {
			t.Fatalf("transpose does not round-trip")
		}

		// NormalizeRows: every non-empty row becomes a distribution — the
		// stochastic property the chain layer validates.
		norm := m.NormalizeRows()
		checkCSRInvariants(t, norm, rows, cols)
		for i := 0; i < rows; i++ {
			if norm.RowNNZ(i) == 0 {
				continue
			}
			if s := norm.RowSum(i); math.Abs(s-1) > 1e-9 {
				t.Fatalf("normalized row %d sums to %g", i, s)
			}
		}
	})
}

// checkCSRInvariants asserts the representation invariants of a CSR.
func checkCSRInvariants(t *testing.T, m *CSR, rows, cols int) {
	t.Helper()
	if m.rows != rows || m.cols != cols {
		t.Fatalf("dims = %dx%d, want %dx%d", m.rows, m.cols, rows, cols)
	}
	if len(m.rowPtr) != rows+1 {
		t.Fatalf("len(rowPtr) = %d, want %d", len(m.rowPtr), rows+1)
	}
	if m.rowPtr[0] != 0 {
		t.Fatalf("rowPtr[0] = %d, want 0", m.rowPtr[0])
	}
	if m.rowPtr[rows] != len(m.vals) || len(m.colIdx) != len(m.vals) {
		t.Fatalf("rowPtr end %d, colIdx %d, vals %d inconsistent", m.rowPtr[rows], len(m.colIdx), len(m.vals))
	}
	for i := 0; i < rows; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		if hi < lo {
			t.Fatalf("rowPtr not monotone at row %d: %d > %d", i, lo, hi)
		}
		for k := lo; k < hi; k++ {
			j := m.colIdx[k]
			if j < 0 || j >= cols {
				t.Fatalf("row %d column %d out of range", i, j)
			}
			if k > lo && m.colIdx[k-1] >= j {
				t.Fatalf("row %d columns not sorted unique: %d then %d", i, m.colIdx[k-1], j)
			}
			if m.vals[k] == 0 {
				t.Fatalf("stored explicit zero at (%d,%d)", i, j)
			}
		}
	}
}

// FuzzFromRows exercises the duplicate/ordering validation of the fast
// row-wise constructor with random (but well-formed) inputs.
func FuzzFromRows(f *testing.F) {
	f.Add(uint16(3), []byte{1, 2, 0})
	f.Fuzz(func(t *testing.T, dims uint16, data []byte) {
		n := 1 + int(dims)%16
		// One byte per row: out-degree; columns chosen round-robin so they
		// are unique by construction.
		m := FromRows(n, n, func(i int) ([]int, []float64) {
			deg := 0
			if i < len(data) {
				deg = int(data[i]) % (n + 1)
			}
			idx := make([]int, 0, deg)
			vals := make([]float64, 0, deg)
			for d := 0; d < deg; d++ {
				idx = append(idx, (i+d*7)%n)
				vals = append(vals, 1)
			}
			return dedupe(idx), ones(len(dedupe(idx)))
		})
		checkCSRInvariants(t, m, n, n)
	})
}

func dedupe(in []int) []int {
	seen := map[int]bool{}
	out := in[:0:0]
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

func ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}
