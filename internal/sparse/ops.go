package sparse

import "fmt"

// VecMat computes dst = x · M (row vector times matrix) using Gustavson's
// row-scatter scheme: for each non-zero x[i], row i of M is scaled by x[i]
// and scattered into dst. The cost is O(Σ_{i ∈ supp(x)} nnz(row i)),
// independent of the matrix dimension, which is what makes the paper's
// object-based evaluation tractable on 100k-state spaces.
//
// dst is reset first and must be distinct from x. x must be non-negative;
// support tracking relies on products never cancelling.
func VecMat(dst, x *Vec, m *CSR) {
	if x.Len() != m.Rows() {
		panic(fmt.Sprintf("sparse: VecMat dimension mismatch: vec %d, matrix %dx%d", x.Len(), m.Rows(), m.Cols()))
	}
	if dst.Len() != m.Cols() {
		panic(fmt.Sprintf("sparse: VecMat destination length %d != %d columns", dst.Len(), m.Cols()))
	}
	if dst == x {
		panic("sparse: VecMat dst must not alias x")
	}
	dst.Reset()
	x.Range(func(i int, xi float64) {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		for k := lo; k < hi; k++ {
			dst.Add(m.colIdx[k], xi*m.vals[k])
		}
	})
}

// MatVec computes dst = M · x (matrix times column vector). It iterates
// rows of M densely and is therefore O(nnz(M)); use it when x is dense or
// when the transposed matrix is unavailable.
//
// dst is reset first and must be distinct from x.
func MatVec(dst *Vec, m *CSR, x *Vec) {
	if x.Len() != m.Cols() {
		panic(fmt.Sprintf("sparse: MatVec dimension mismatch: matrix %dx%d, vec %d", m.Rows(), m.Cols(), x.Len()))
	}
	if dst.Len() != m.Rows() {
		panic(fmt.Sprintf("sparse: MatVec destination length %d != %d rows", dst.Len(), m.Rows()))
	}
	if dst == x {
		panic("sparse: MatVec dst must not alias x")
	}
	dst.Reset()
	xd := x.RawData()
	for i := 0; i < m.rows; i++ {
		s := 0.0
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.vals[k] * xd[m.colIdx[k]]
		}
		if s != 0 {
			dst.Add(i, s)
		}
	}
}

// MatMul returns the product a·b as a new CSR matrix, computed row by row
// with a dense workspace (Gustavson's algorithm). Intended for building
// m-step transition matrices on moderate state spaces and for tests; the
// query engine itself never multiplies two matrices.
func MatMul(a, b *CSR) *CSR {
	if a.Cols() != b.Rows() {
		panic(fmt.Sprintf("sparse: MatMul dimension mismatch: %dx%d times %dx%d", a.Rows(), a.Cols(), b.Rows(), b.Cols()))
	}
	out := &CSR{rows: a.rows, cols: b.cols, rowPtr: make([]int, a.rows+1)}
	work := make([]float64, b.cols)
	var touched []int
	for i := 0; i < a.rows; i++ {
		touched = touched[:0]
		for ka := a.rowPtr[i]; ka < a.rowPtr[i+1]; ka++ {
			j := a.colIdx[ka]
			av := a.vals[ka]
			for kb := b.rowPtr[j]; kb < b.rowPtr[j+1]; kb++ {
				c := b.colIdx[kb]
				if work[c] == 0 {
					touched = append(touched, c)
				}
				work[c] += av * b.vals[kb]
			}
		}
		// Gather in ascending column order.
		insertionSort(touched)
		for _, c := range touched {
			if work[c] != 0 {
				out.colIdx = append(out.colIdx, c)
				out.vals = append(out.vals, work[c])
			}
			work[c] = 0
		}
		out.rowPtr[i+1] = len(out.vals)
	}
	return out
}

// MatPow returns mᵏ for k ≥ 0 via binary exponentiation. k = 0 yields the
// identity. Used to realize the Chapman-Kolmogorov m-step matrices.
func MatPow(m *CSR, k int) *CSR {
	if m.Rows() != m.Cols() {
		panic("sparse: MatPow requires a square matrix")
	}
	if k < 0 {
		panic("sparse: MatPow negative exponent")
	}
	result := Identity(m.Rows())
	base := m
	for k > 0 {
		if k&1 == 1 {
			result = MatMul(result, base)
		}
		k >>= 1
		if k > 0 {
			base = MatMul(base, base)
		}
	}
	return result
}

// insertionSort sorts small integer slices in place. Rows touched during
// a MatMul gather are short, making insertion sort faster than sort.Ints.
func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
