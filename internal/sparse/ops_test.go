package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecMatPaperExample(t *testing.T) {
	// P(o,0) = (0,1,0); after one step (0.6, 0, 0.4); after two
	// (0, 0.32, 0.68) — the numbers worked in Section V-A of the paper.
	m := paperChain()
	x := NewVec(3)
	x.Set(1, 1)
	y := NewVec(3)
	VecMat(y, x, m)
	if math.Abs(y.At(0)-0.6) > 1e-15 || y.At(1) != 0 || math.Abs(y.At(2)-0.4) > 1e-15 {
		t.Fatalf("step 1 = %v, want [0:0.6 2:0.4]", y)
	}
	x2 := NewVec(3)
	VecMat(x2, y, m)
	if x2.At(0) != 0 || math.Abs(x2.At(1)-0.32) > 1e-12 || math.Abs(x2.At(2)-0.68) > 1e-12 {
		t.Fatalf("step 2 = %v, want [1:0.32 2:0.68]", x2)
	}
}

func TestVecMatAliasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("aliased VecMat did not panic")
		}
	}()
	v := NewVec(3)
	VecMat(v, v, paperChain())
}

func TestVecMatDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched VecMat did not panic")
		}
	}()
	VecMat(NewVec(3), NewVec(4), paperChain())
}

func TestMatVecAgainstTransposedVecMat(t *testing.T) {
	// M·x == xᵀ·Mᵀ: the query-based backward step can be computed either
	// way; both paths must agree.
	rng := rand.New(rand.NewSource(7))
	m := randomStochastic(rng, 20, 4)
	mt := m.Transpose()
	x := NewVec(20)
	for i := 0; i < 20; i += 3 {
		x.Set(i, rng.Float64())
	}
	viaMatVec := NewVec(20)
	MatVec(viaMatVec, m, x)
	viaVecMat := NewVec(20)
	VecMat(viaVecMat, x, mt)
	if !viaMatVec.Equal(viaVecMat, 1e-12) {
		t.Errorf("MatVec disagrees with VecMat on transpose:\n%v\n%v", viaMatVec, viaVecMat)
	}
}

func TestVecMatMatchesDenseQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 11, 17
		m := randomCSR(rng, rows, cols, 0.25)
		x := NewVec(rows)
		for i := 0; i < rows; i++ {
			if rng.Float64() < 0.4 {
				x.Set(i, rng.Float64())
			}
		}
		y := NewVec(cols)
		VecMat(y, x, m)
		// Dense reference.
		d := m.Dense()
		for j := 0; j < cols; j++ {
			want := 0.0
			for i := 0; i < rows; i++ {
				want += x.At(i) * d[i][j]
			}
			if math.Abs(y.At(j)-want) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestVecMatPreservesMassQuick(t *testing.T) {
	// Probability mass is conserved by a stochastic transition:
	// Σ (x·M) == Σ x.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(30)
		m := randomStochastic(rng, n, 5)
		x := NewVec(n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.3 {
				x.Set(i, rng.Float64())
			}
		}
		y := NewVec(n)
		VecMat(y, x, m)
		return math.Abs(y.Sum()-x.Sum()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMatMulPaperExample(t *testing.T) {
	m := paperChain()
	m2 := MatMul(m, m)
	// Row 1 of M² must equal P(o,2) for a start at s2: (0, 0.32, 0.68).
	if math.Abs(m2.At(1, 0)) > 1e-12 ||
		math.Abs(m2.At(1, 1)-0.32) > 1e-12 ||
		math.Abs(m2.At(1, 2)-0.68) > 1e-12 {
		t.Errorf("M² row 1 = [%g %g %g], want [0 0.32 0.68]",
			m2.At(1, 0), m2.At(1, 1), m2.At(1, 2))
	}
}

func TestMatMulIdentity(t *testing.T) {
	m := paperChain()
	if !MatMul(m, Identity(3)).Equal(m, 0) {
		t.Error("M·I != M")
	}
	if !MatMul(Identity(3), m).Equal(m, 0) {
		t.Error("I·M != M")
	}
}

func TestMatMulAssociativeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomCSR(rng, 6, 8, 0.3)
		b := randomCSR(rng, 8, 5, 0.3)
		c := randomCSR(rng, 5, 7, 0.3)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMatMulStochasticClosedQuick(t *testing.T) {
	// The product of stochastic matrices is stochastic (Chapman-
	// Kolmogorov foundation).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(20)
		a := randomStochastic(rng, n, 4)
		b := randomStochastic(rng, n, 4)
		return MatMul(a, b).CheckStochastic(1e-9) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMatPow(t *testing.T) {
	m := paperChain()
	if !MatPow(m, 0).Equal(Identity(3), 0) {
		t.Error("M⁰ != I")
	}
	if !MatPow(m, 1).Equal(m, 0) {
		t.Error("M¹ != M")
	}
	if !MatPow(m, 3).Equal(MatMul(m, MatMul(m, m)), 1e-12) {
		t.Error("M³ mismatch with repeated multiplication")
	}
	// Chapman-Kolmogorov: M^(a+b) = M^a · M^b.
	if !MatPow(m, 5).Equal(MatMul(MatPow(m, 2), MatPow(m, 3)), 1e-12) {
		t.Error("Chapman-Kolmogorov violated")
	}
}

func TestMatPowNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatPow(-1) did not panic")
		}
	}()
	MatPow(paperChain(), -1)
}

func TestBuilderDuplicatesSum(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 1, 0.25)
	b.Add(0, 1, 0.25)
	b.Add(1, 0, 1)
	b.Add(0, 0, 0) // dropped
	m := b.Build()
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	if m.At(0, 1) != 0.5 {
		t.Errorf("duplicate coordinates not summed: %g", m.At(0, 1))
	}
}

func TestBuilderOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds Add did not panic")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestFromRowsDuplicateColumnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate column did not panic")
		}
	}()
	FromRows(1, 3, func(i int) ([]int, []float64) {
		return []int{1, 1}, []float64{0.5, 0.5}
	})
}

func TestFromRowsUnsortedInput(t *testing.T) {
	m := FromRows(1, 4, func(i int) ([]int, []float64) {
		return []int{3, 0}, []float64{0.7, 0.3}
	})
	if m.At(0, 0) != 0.3 || m.At(0, 3) != 0.7 {
		t.Error("FromRows mishandles unsorted columns")
	}
	cols, _ := m.RowSlices(0)
	if cols[0] != 0 || cols[1] != 3 {
		t.Error("FromRows did not sort columns")
	}
}

func TestBuilderEqualsFromRowsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8
		dense := make([][]float64, n)
		for i := range dense {
			dense[i] = make([]float64, n)
			for j := range dense[i] {
				if rng.Float64() < 0.3 {
					dense[i][j] = rng.Float64()
				}
			}
		}
		b := NewBuilder(n, n)
		for i := range dense {
			for j, x := range dense[i] {
				b.Add(i, j, x)
			}
		}
		return b.Build().Equal(FromDense(dense), 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
