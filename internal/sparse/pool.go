package sparse

import "sync"

// VecPool recycles sweep scratch vectors across queries. Every backward
// sweep and forward pass needs one or two |S|-sized buffers; on a 100k
// state space that is ~1.6 MB of garbage per evaluated request. The pool
// keeps one free list per dimension (databases routinely mix chains over
// different state spaces) and hands out zeroed, sparse-mode vectors.
//
// VecPool is safe for concurrent use; the zero value is ready to use.
type VecPool struct {
	mu    sync.Mutex
	pools map[int]*sync.Pool
}

// Get returns a zeroed vector of dimension n, reusing a pooled one when
// available.
func (p *VecPool) Get(n int) *Vec {
	if p == nil {
		return NewVec(n)
	}
	return p.poolFor(n).Get().(*Vec)
}

// Put returns v to the pool for reuse. v must not be used afterwards.
// Putting a vector that escaped to a caller (a returned score, a cached
// entry) is a bug; only scratch buffers go back.
func (p *VecPool) Put(v *Vec) {
	if p == nil || v == nil {
		return
	}
	v.Reset()
	p.poolFor(v.Len()).Put(v)
}

func (p *VecPool) poolFor(n int) *sync.Pool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pools == nil {
		p.pools = map[int]*sync.Pool{}
	}
	sp, ok := p.pools[n]
	if !ok {
		sp = &sync.Pool{New: func() any { return NewVec(n) }}
		p.pools[n] = sp
	}
	return sp
}
