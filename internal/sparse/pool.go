package sparse

import "sync"

// VecPool recycles sweep scratch vectors across queries. Every backward
// sweep and forward pass needs one or two |S|-sized buffers; on a 100k
// state space that is ~1.6 MB of garbage per evaluated request. The pool
// keeps one free list per dimension (databases routinely mix chains over
// different state spaces) and hands out zeroed, sparse-mode vectors.
//
// VecPool is safe for concurrent use; the zero value is ready to use.
type VecPool struct {
	mu    sync.Mutex
	pools map[int]*sync.Pool
}

// Get returns a zeroed vector of dimension n, reusing a pooled one when
// available.
func (p *VecPool) Get(n int) *Vec {
	if p == nil {
		return NewVec(n)
	}
	return p.poolFor(n).Get().(*Vec)
}

// Put returns v to the pool for reuse. v must not be used afterwards.
// Putting a vector that escaped to a caller (a returned score, a cached
// entry) is a bug; only scratch buffers go back.
func (p *VecPool) Put(v *Vec) {
	if p == nil || v == nil {
		return
	}
	v.Reset()
	p.poolFor(v.Len()).Put(v)
}

func (p *VecPool) poolFor(n int) *sync.Pool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pools == nil {
		p.pools = map[int]*sync.Pool{}
	}
	sp, ok := p.pools[n]
	if !ok {
		sp = &sync.Pool{New: func() any { return NewVec(n) }}
		p.pools[n] = sp
	}
	return sp
}

// FloatPool recycles flat float64 blocks: the scratch of the columnar
// multi-observation/posterior kernels, which work on raw state-major
// lanes instead of Vecs. Like VecPool it keeps one free list per length
// and hands out zeroed slices; the zero value is ready to use and a nil
// *FloatPool degrades to plain allocation.
type FloatPool struct {
	mu    sync.Mutex
	pools map[int]*sync.Pool
}

// Get returns a zeroed block of length n.
func (p *FloatPool) Get(n int) []float64 {
	if p == nil {
		return make([]float64, n)
	}
	return *p.blockFor(n).Get().(*[]float64)
}

// Put returns b to the pool. b must not be used afterwards.
func (p *FloatPool) Put(b []float64) {
	if p == nil || b == nil {
		return
	}
	clear(b)
	p.blockFor(len(b)).Put(&b)
}

func (p *FloatPool) blockFor(n int) *sync.Pool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pools == nil {
		p.pools = map[int]*sync.Pool{}
	}
	sp, ok := p.pools[n]
	if !ok {
		sp = &sync.Pool{New: func() any { b := make([]float64, n); return &b }}
		p.pools[n] = sp
	}
	return sp
}
