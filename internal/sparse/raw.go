package sparse

import "fmt"

// Raw representation accessors. The networked sweep tier ships cached
// sweep payloads between processes, and dot products over a Vec follow
// its INTERNAL representation (dense flag, support order) — so a codec
// that wants bit-identical results downstream must round-trip that
// representation exactly, not just the abstract value. These accessors
// expose and adopt it without copies.

// Repr exposes the vector's internal representation: the dense backing
// array, the support list (nil in dense mode) and the dense flag. All
// returned slices are the live internals and must be treated as
// read-only. Reconstructing a vector via AdoptDense(data) (dense) or
// AdoptSparse(data, supp) (sparse) from copies of these yields a vector
// whose every operation — including support-order-dependent iteration —
// is bit-identical to the original's.
func (v *Vec) Repr() (data []float64, supp []int, dense bool) {
	return v.data, v.supp, v.dense
}

// Words64 exposes the bitset's backing words without copying. Read-only.
func (b *Bitset) Words64() []uint64 { return b.words }

// BitsetFromWords adopts a word slice — no copy — as a bitset over
// {0, …, n−1}. The slice length must match exactly and no bit at or
// beyond n may be set (Count and Equal trust the tail to be clean).
func BitsetFromWords(n int, words []uint64) (*Bitset, error) {
	if n < 0 {
		return nil, fmt.Errorf("sparse: negative bitset dimension %d", n)
	}
	if len(words) != (n+63)/64 {
		return nil, fmt.Errorf("sparse: bitset over %d states needs %d words, got %d", n, (n+63)/64, len(words))
	}
	if tail := n & 63; tail != 0 && len(words) > 0 {
		if words[len(words)-1]>>uint(tail) != 0 {
			return nil, fmt.Errorf("sparse: bitset word tail has bits beyond dimension %d", n)
		}
	}
	return &Bitset{n: n, words: words}, nil
}
