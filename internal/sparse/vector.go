// Package sparse provides the sparse linear-algebra substrate used by the
// uncertain spatio-temporal query engine: compressed sparse row (CSR)
// matrices, hybrid sparse/dense vectors, and the vector-matrix kernels the
// paper reduces all queries to.
//
// The package replaces the Matlab matrix engine used by the original ICDE
// 2012 implementation. All kernels are written for the access pattern that
// dominates query evaluation: repeated row-major vector-matrix products
// with non-negative data (probability mass).
package sparse

import (
	"fmt"
	"math"
	"sort"
)

// DenseThreshold is the support fill ratio above which a Vec stops
// maintaining its support list and iterates densely. Beyond roughly a
// quarter of the dimension, walking the dense backing array is cheaper
// than maintaining the index list.
const DenseThreshold = 0.25

// Vec is a hybrid sparse/dense vector of non-negative float64 values.
//
// A Vec always owns a dense backing array of length Len(). While the
// number of non-zero entries is small it additionally tracks the support
// (indices of non-zero entries) so that consumers can iterate in O(nnz).
// Once the support grows past DenseThreshold*Len() the vector flips to
// dense mode and the support list is abandoned.
//
// The zero value is not usable; construct with NewVec.
type Vec struct {
	data  []float64
	supp  []int
	dense bool
}

// NewVec returns a zero vector of dimension n.
func NewVec(n int) *Vec {
	if n < 0 {
		panic("sparse: negative vector dimension")
	}
	return &Vec{data: make([]float64, n)}
}

// AdoptDense wraps data — taking ownership, no copy — as a dense-mode
// vector: the O(1) constructor for bulk-computed payloads (the fused
// batch sweeps gather whole columns at once). The caller must not
// touch data afterwards.
func AdoptDense(data []float64) *Vec {
	return &Vec{data: data, dense: true}
}

// AdoptSparse wraps a dense backing array and its support list — taking
// ownership of both, no copy — as a sparse-mode vector: the O(1)
// constructor for column-materialized payloads (the store's mapped load
// path carves pdf backings and support lists out of shared arenas). The
// caller warrants that supp lists exactly the non-zero indices of data
// (stale zero entries are tolerated, duplicates are not) and must not
// touch either slice afterwards. Vectors whose support exceeds the
// DenseThreshold stay in sparse mode; that is a performance statement,
// not a correctness one.
func AdoptSparse(data []float64, supp []int) *Vec {
	return &Vec{data: data, supp: supp}
}

// NewVecFrom returns a vector with a copy of the given dense data.
func NewVecFrom(data []float64) *Vec {
	v := NewVec(len(data))
	for i, x := range data {
		if x != 0 {
			v.Set(i, x)
		}
	}
	return v
}

// Len returns the dimension of the vector.
func (v *Vec) Len() int { return len(v.data) }

// NNZ returns the number of structurally tracked non-zero entries. In
// dense mode it is computed by a scan.
func (v *Vec) NNZ() int {
	if v.dense {
		n := 0
		for _, x := range v.data {
			if x != 0 {
				n++
			}
		}
		return n
	}
	return len(v.supp)
}

// Dense reports whether the vector has abandoned support tracking.
func (v *Vec) Dense() bool { return v.dense }

// At returns the value at index i.
func (v *Vec) At(i int) float64 { return v.data[i] }

// Set assigns value x at index i, maintaining the support list.
// Setting an entry to zero is permitted but does not shrink the support;
// a subsequent Compact removes stale indices.
func (v *Vec) Set(i int, x float64) {
	if x != 0 && v.data[i] == 0 && !v.dense {
		v.supp = append(v.supp, i)
		v.maybeDensify()
	}
	v.data[i] = x
}

// Add accumulates x into index i, maintaining the support list.
func (v *Vec) Add(i int, x float64) {
	if x == 0 {
		return
	}
	if v.data[i] == 0 && !v.dense {
		v.supp = append(v.supp, i)
		v.maybeDensify()
	}
	v.data[i] += x
}

func (v *Vec) maybeDensify() {
	if !v.dense && float64(len(v.supp)) > DenseThreshold*float64(len(v.data)) {
		v.dense = true
		v.supp = nil
	}
}

// Reset zeroes the vector and restores sparse mode, reusing storage.
func (v *Vec) Reset() {
	if v.dense {
		for i := range v.data {
			v.data[i] = 0
		}
	} else {
		for _, i := range v.supp {
			v.data[i] = 0
		}
	}
	v.supp = v.supp[:0]
	v.dense = false
}

// Clone returns a deep copy of v.
func (v *Vec) Clone() *Vec {
	w := &Vec{
		data:  append([]float64(nil), v.data...),
		dense: v.dense,
	}
	if !v.dense {
		w.supp = append([]int(nil), v.supp...)
	}
	return w
}

// CopyFrom overwrites v with the contents of w. The vectors must have the
// same dimension.
func (v *Vec) CopyFrom(w *Vec) {
	if v.Len() != w.Len() {
		panic(fmt.Sprintf("sparse: CopyFrom dimension mismatch %d != %d", v.Len(), w.Len()))
	}
	v.Reset()
	copy(v.data, w.data)
	v.dense = w.dense
	if !w.dense {
		v.supp = append(v.supp[:0], w.supp...)
	}
}

// Range calls fn for every non-zero entry. Order is unspecified in sparse
// mode and ascending in dense mode. The one mutation fn may perform on v
// is zeroing entries it has been handed (Set(i, 0)): zero-writes never
// touch the support list, and both iteration modes tolerate them — the
// mass-moving kernels (sweepHits, shiftDown, the augmented expression
// forward pass) rely on exactly this, followed by a Compact. Any other
// mutation from fn is forbidden.
func (v *Vec) Range(fn func(i int, x float64)) {
	if v.dense {
		for i, x := range v.data {
			if x != 0 {
				fn(i, x)
			}
		}
		return
	}
	for _, i := range v.supp {
		if x := v.data[i]; x != 0 {
			fn(i, x)
		}
	}
}

// Support returns the indices of non-zero entries in ascending order.
// The returned slice is freshly allocated.
func (v *Vec) Support() []int {
	var out []int
	v.Range(func(i int, _ float64) { out = append(out, i) })
	sort.Ints(out)
	return out
}

// DenseData returns a copy of the dense backing array.
func (v *Vec) DenseData() []float64 {
	return append([]float64(nil), v.data...)
}

// RawData exposes the dense backing array without copying. Callers must
// treat it as read-only; mutating it desynchronizes the support list.
func (v *Vec) RawData() []float64 { return v.data }

// Sum returns the total mass Σ v[i].
func (v *Vec) Sum() float64 {
	s := 0.0
	if v.dense {
		for _, x := range v.data {
			s += x
		}
		return s
	}
	for _, i := range v.supp {
		s += v.data[i]
	}
	return s
}

// Max returns the largest entry value, or 0 for an all-zero vector.
func (v *Vec) Max() float64 {
	m := 0.0
	v.Range(func(_ int, x float64) {
		if x > m {
			m = x
		}
	})
	return m
}

// Dot returns the inner product of v and w. The cheaper side drives the
// iteration.
func (v *Vec) Dot(w *Vec) float64 {
	if v.Len() != w.Len() {
		panic(fmt.Sprintf("sparse: Dot dimension mismatch %d != %d", v.Len(), w.Len()))
	}
	a, b := v, w
	if a.dense && !b.dense {
		a, b = b, a
	}
	s := 0.0
	a.Range(func(i int, x float64) {
		s += x * b.data[i]
	})
	return s
}

// DotDense returns the inner product of v with a raw dense slice.
func (v *Vec) DotDense(w []float64) float64 {
	if v.Len() != len(w) {
		panic(fmt.Sprintf("sparse: DotDense dimension mismatch %d != %d", v.Len(), len(w)))
	}
	s := 0.0
	v.Range(func(i int, x float64) {
		s += x * w[i]
	})
	return s
}

// Scale multiplies every entry by c. Scaling by zero resets the vector;
// negative factors are rejected because Vec is documented non-negative.
func (v *Vec) Scale(c float64) {
	if c < 0 {
		panic("sparse: Scale by negative factor on non-negative vector")
	}
	if c == 0 {
		v.Reset()
		return
	}
	if v.dense {
		for i := range v.data {
			v.data[i] *= c
		}
		return
	}
	for _, i := range v.supp {
		v.data[i] *= c
	}
}

// Normalize scales v so that its entries sum to one and returns the
// pre-normalization mass. A zero vector is left unchanged and 0 returned.
func (v *Vec) Normalize() float64 {
	s := v.Sum()
	if s > 0 {
		v.Scale(1 / s)
	}
	return s
}

// Hadamard replaces v by the elementwise product v ⊙ w.
func (v *Vec) Hadamard(w *Vec) {
	if v.Len() != w.Len() {
		panic(fmt.Sprintf("sparse: Hadamard dimension mismatch %d != %d", v.Len(), w.Len()))
	}
	if v.dense {
		for i := range v.data {
			v.data[i] *= w.data[i]
		}
		return
	}
	for _, i := range v.supp {
		v.data[i] *= w.data[i]
	}
	v.Compact()
}

// AddVec accumulates c*w into v.
func (v *Vec) AddVec(c float64, w *Vec) {
	if v.Len() != w.Len() {
		panic(fmt.Sprintf("sparse: AddVec dimension mismatch %d != %d", v.Len(), w.Len()))
	}
	w.Range(func(i int, x float64) { v.Add(i, c*x) })
}

// Compact removes stale zero entries from the support list.
func (v *Vec) Compact() {
	if v.dense {
		return
	}
	out := v.supp[:0]
	for _, i := range v.supp {
		if v.data[i] != 0 {
			out = append(out, i)
		}
	}
	v.supp = out
}

// Equal reports whether v and w have identical dimension and entries
// within tolerance tol.
func (v *Vec) Equal(w *Vec, tol float64) bool {
	if v.Len() != w.Len() {
		return false
	}
	for i := range v.data {
		if math.Abs(v.data[i]-w.data[i]) > tol {
			return false
		}
	}
	return true
}

// MassIn returns Σ_{i ∈ idx} v[i]. Indices may repeat; repeats are counted
// once (idx is treated as a set via a scratch pass when needed).
func (v *Vec) MassIn(idx []int) float64 {
	s := 0.0
	seen := make(map[int]bool, len(idx))
	for _, i := range idx {
		if seen[i] {
			continue
		}
		seen[i] = true
		s += v.data[i]
	}
	return s
}

// String renders a compact human-readable form, for debugging and tests.
func (v *Vec) String() string {
	idx := v.Support()
	out := "["
	for k, i := range idx {
		if k > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d:%.6g", i, v.data[i])
	}
	return out + "]"
}
