package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewVecZero(t *testing.T) {
	v := NewVec(10)
	if v.Len() != 10 {
		t.Fatalf("Len = %d, want 10", v.Len())
	}
	if v.NNZ() != 0 {
		t.Fatalf("NNZ = %d, want 0", v.NNZ())
	}
	if v.Sum() != 0 {
		t.Fatalf("Sum = %g, want 0", v.Sum())
	}
	if v.Dense() {
		t.Fatal("fresh vector should be sparse")
	}
}

func TestNewVecNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewVec(-1) did not panic")
		}
	}()
	NewVec(-1)
}

func TestVecSetAddAt(t *testing.T) {
	v := NewVec(8)
	v.Set(3, 0.5)
	v.Add(3, 0.25)
	v.Add(7, 1.0)
	if got := v.At(3); got != 0.75 {
		t.Errorf("At(3) = %g, want 0.75", got)
	}
	if got := v.At(7); got != 1.0 {
		t.Errorf("At(7) = %g, want 1", got)
	}
	if got := v.At(0); got != 0 {
		t.Errorf("At(0) = %g, want 0", got)
	}
	if got := v.NNZ(); got != 2 {
		t.Errorf("NNZ = %d, want 2", got)
	}
	if got := v.Sum(); math.Abs(got-1.75) > 1e-15 {
		t.Errorf("Sum = %g, want 1.75", got)
	}
}

func TestVecAddZeroIsNoop(t *testing.T) {
	v := NewVec(4)
	v.Add(1, 0)
	if v.NNZ() != 0 {
		t.Fatalf("Add(i, 0) extended support: NNZ = %d", v.NNZ())
	}
}

func TestVecDensify(t *testing.T) {
	n := 100
	v := NewVec(n)
	for i := 0; i < n/2; i++ {
		v.Set(i, 1)
	}
	if !v.Dense() {
		t.Fatalf("vector with %d/%d non-zeros should have densified", n/2, n)
	}
	// Semantics must be unchanged after the flip.
	if got := v.Sum(); got != float64(n/2) {
		t.Errorf("Sum = %g, want %d", got, n/2)
	}
	if got := v.NNZ(); got != n/2 {
		t.Errorf("NNZ = %d, want %d", got, n/2)
	}
}

func TestVecResetRestoresSparse(t *testing.T) {
	v := NewVec(16)
	for i := 0; i < 16; i++ {
		v.Set(i, float64(i+1))
	}
	if !v.Dense() {
		t.Fatal("expected dense after full fill")
	}
	v.Reset()
	if v.Dense() {
		t.Error("Reset should restore sparse mode")
	}
	if v.NNZ() != 0 || v.Sum() != 0 {
		t.Errorf("Reset left NNZ=%d Sum=%g", v.NNZ(), v.Sum())
	}
	v.Set(5, 2)
	if v.At(5) != 2 || v.NNZ() != 1 {
		t.Error("vector unusable after Reset")
	}
}

func TestVecCloneIndependence(t *testing.T) {
	v := NewVec(5)
	v.Set(2, 0.5)
	w := v.Clone()
	w.Set(2, 0.9)
	w.Set(4, 0.1)
	if v.At(2) != 0.5 || v.At(4) != 0 {
		t.Error("Clone is not independent of the original")
	}
}

func TestVecCopyFrom(t *testing.T) {
	v := NewVec(6)
	v.Set(0, 9)
	w := NewVec(6)
	w.Set(3, 0.25)
	w.Set(5, 0.75)
	v.CopyFrom(w)
	if !v.Equal(w, 0) {
		t.Errorf("CopyFrom mismatch: %v vs %v", v, w)
	}
	if v.At(0) != 0 {
		t.Error("CopyFrom did not clear previous contents")
	}
}

func TestVecCopyFromDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom with mismatched dims did not panic")
		}
	}()
	NewVec(3).CopyFrom(NewVec(4))
}

func TestVecSupportSorted(t *testing.T) {
	v := NewVec(10)
	for _, i := range []int{7, 2, 9, 0} {
		v.Set(i, 1)
	}
	got := v.Support()
	want := []int{0, 2, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("Support = %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("Support = %v, want %v", got, want)
		}
	}
}

func TestVecDot(t *testing.T) {
	v := NewVec(4)
	v.Set(0, 0.5)
	v.Set(2, 0.5)
	w := NewVec(4)
	w.Set(2, 2)
	w.Set(3, 7)
	if got := v.Dot(w); got != 1.0 {
		t.Errorf("Dot = %g, want 1", got)
	}
	if got := w.Dot(v); got != 1.0 {
		t.Errorf("Dot not symmetric: %g", got)
	}
	if got := v.DotDense([]float64{1, 1, 1, 1}); got != 1.0 {
		t.Errorf("DotDense = %g, want 1", got)
	}
}

func TestVecDotMixedModes(t *testing.T) {
	n := 40
	dense := NewVec(n)
	for i := 0; i < n; i++ {
		dense.Set(i, 1)
	}
	sparseV := NewVec(n)
	sparseV.Set(11, 0.5)
	if !dense.Dense() || sparseV.Dense() {
		t.Fatal("test setup: expected one dense and one sparse vector")
	}
	if got := dense.Dot(sparseV); got != 0.5 {
		t.Errorf("dense·sparse = %g, want 0.5", got)
	}
	if got := sparseV.Dot(dense); got != 0.5 {
		t.Errorf("sparse·dense = %g, want 0.5", got)
	}
}

func TestVecScaleAndNormalize(t *testing.T) {
	v := NewVec(3)
	v.Set(0, 1)
	v.Set(1, 3)
	v.Scale(0.5)
	if v.At(0) != 0.5 || v.At(1) != 1.5 {
		t.Errorf("Scale result wrong: %v", v)
	}
	mass := v.Normalize()
	if math.Abs(mass-2.0) > 1e-15 {
		t.Errorf("Normalize returned %g, want 2", mass)
	}
	if math.Abs(v.Sum()-1) > 1e-15 {
		t.Errorf("normalized Sum = %g, want 1", v.Sum())
	}
}

func TestVecNormalizeZeroVector(t *testing.T) {
	v := NewVec(3)
	if got := v.Normalize(); got != 0 {
		t.Errorf("Normalize of zero vector returned %g, want 0", got)
	}
}

func TestVecScaleByZeroResets(t *testing.T) {
	v := NewVec(3)
	v.Set(1, 5)
	v.Scale(0)
	if v.NNZ() != 0 || v.Sum() != 0 {
		t.Errorf("Scale(0) left NNZ=%d Sum=%g", v.NNZ(), v.Sum())
	}
}

func TestVecScaleNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Scale(-1) did not panic")
		}
	}()
	v := NewVec(2)
	v.Set(0, 1)
	v.Scale(-1)
}

func TestVecHadamard(t *testing.T) {
	v := NewVec(4)
	v.Set(0, 0.5)
	v.Set(1, 0.5)
	w := NewVec(4)
	w.Set(1, 0.2)
	w.Set(2, 0.8)
	v.Hadamard(w)
	if v.At(0) != 0 || math.Abs(v.At(1)-0.1) > 1e-15 || v.At(2) != 0 {
		t.Errorf("Hadamard result wrong: %v", v)
	}
	if v.NNZ() != 1 {
		t.Errorf("Hadamard left stale support, NNZ = %d", v.NNZ())
	}
}

func TestVecAddVec(t *testing.T) {
	v := NewVec(3)
	v.Set(0, 1)
	w := NewVec(3)
	w.Set(0, 1)
	w.Set(2, 2)
	v.AddVec(0.5, w)
	if v.At(0) != 1.5 || v.At(2) != 1 {
		t.Errorf("AddVec result wrong: %v", v)
	}
}

func TestVecMassIn(t *testing.T) {
	v := NewVec(5)
	v.Set(1, 0.25)
	v.Set(3, 0.5)
	if got := v.MassIn([]int{1, 3, 3, 4}); math.Abs(got-0.75) > 1e-15 {
		t.Errorf("MassIn = %g, want 0.75 (duplicates counted once)", got)
	}
}

func TestVecMaxAndString(t *testing.T) {
	v := NewVec(4)
	if v.Max() != 0 {
		t.Errorf("Max of zero vector = %g", v.Max())
	}
	v.Set(1, 0.3)
	v.Set(2, 0.7)
	if v.Max() != 0.7 {
		t.Errorf("Max = %g, want 0.7", v.Max())
	}
	if s := v.String(); s != "[1:0.3 2:0.7]" {
		t.Errorf("String = %q", s)
	}
}

// Property: for any sequence of Set/Add operations with non-negative
// values, the hybrid vector agrees with a reference dense slice.
func TestVecMatchesDenseReferenceQuick(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		const n = 64
		rng := rand.New(rand.NewSource(seed))
		v := NewVec(n)
		ref := make([]float64, n)
		for _, op := range ops {
			i := int(op) % n
			x := rng.Float64()
			if op%3 == 0 {
				v.Set(i, x)
				ref[i] = x
			} else {
				v.Add(i, x)
				ref[i] += x
			}
		}
		for i := 0; i < n; i++ {
			if math.Abs(v.At(i)-ref[i]) > 1e-12 {
				return false
			}
		}
		refSum := 0.0
		for _, x := range ref {
			refSum += x
		}
		return math.Abs(v.Sum()-refSum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: support tracking never misses or duplicates an index.
func TestVecSupportSoundQuick(t *testing.T) {
	f := func(idx []uint16) bool {
		const n = 97
		v := NewVec(n)
		want := map[int]bool{}
		for _, u := range idx {
			i := int(u) % n
			v.Set(i, 1+float64(i))
			want[i] = true
		}
		got := v.Support()
		if len(got) != len(want) {
			return false
		}
		for _, i := range got {
			if !want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNewVecFrom(t *testing.T) {
	v := NewVecFrom([]float64{0, 1.5, 0, 2.5})
	if v.Len() != 4 || v.NNZ() != 2 {
		t.Fatalf("NewVecFrom: Len=%d NNZ=%d", v.Len(), v.NNZ())
	}
	if v.At(1) != 1.5 || v.At(3) != 2.5 {
		t.Error("NewVecFrom values wrong")
	}
	got := v.DenseData()
	if len(got) != 4 || got[1] != 1.5 {
		t.Errorf("DenseData = %v", got)
	}
	// DenseData must be a copy.
	got[1] = 99
	if v.At(1) != 1.5 {
		t.Error("DenseData aliases internal storage")
	}
}

func TestVecCompactRemovesStaleSupport(t *testing.T) {
	v := NewVec(10)
	v.Set(1, 1)
	v.Set(2, 1)
	v.Set(1, 0) // stale support entry
	v.Compact()
	sup := v.Support()
	if len(sup) != 1 || sup[0] != 2 {
		t.Errorf("Support after Compact = %v", sup)
	}
	// Compact on a dense vector is a no-op.
	d := NewVec(4)
	for i := 0; i < 4; i++ {
		d.Set(i, 1)
	}
	d.Compact()
	if d.NNZ() != 4 {
		t.Error("Compact broke dense vector")
	}
}

func TestVecHadamardDenseReceiver(t *testing.T) {
	n := 12
	v := NewVec(n)
	for i := 0; i < n; i++ {
		v.Set(i, 2)
	}
	if !v.Dense() {
		t.Fatal("setup: expected dense")
	}
	w := NewVec(n)
	w.Set(3, 0.5)
	v.Hadamard(w)
	if v.At(3) != 1 || v.Sum() != 1 {
		t.Errorf("dense Hadamard wrong: %v", v)
	}
}

func TestVecHadamardDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Hadamard dim mismatch did not panic")
		}
	}()
	NewVec(2).Hadamard(NewVec(3))
}

func TestVecEqualDimensionMismatch(t *testing.T) {
	if NewVec(2).Equal(NewVec(3), 1) {
		t.Error("different dimensions reported Equal")
	}
}

func TestVecDotDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot dim mismatch did not panic")
		}
	}()
	NewVec(2).Dot(NewVec(3))
}

func TestVecDotDenseDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DotDense dim mismatch did not panic")
		}
	}()
	NewVec(2).DotDense([]float64{1})
}

func TestVecAddVecDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddVec dim mismatch did not panic")
		}
	}()
	NewVec(2).AddVec(1, NewVec(3))
}
