// Package spatial provides the discrete spatial domain S of the paper:
// finite sets of locations ("states") embedded in R^d, regions used as
// query windows, and an R-tree index that resolves a region to the set of
// state identifiers it covers.
package spatial

import "fmt"

// Point is a location in R².
type Point struct {
	X, Y float64
}

// Grid is a regular 2-D raster state space: W×H cells of size CellSize,
// anchored at Origin. State identifiers are assigned row-major:
// id = y*W + x. The paper's Figure 2 raster is exactly this space.
type Grid struct {
	W, H     int
	CellSize float64
	Origin   Point
}

// NewGrid returns a grid with unit cells anchored at the origin.
func NewGrid(w, h int) *Grid {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("spatial: invalid grid dimensions %dx%d", w, h))
	}
	return &Grid{W: w, H: h, CellSize: 1}
}

// NumStates returns |S| = W·H.
func (g *Grid) NumStates() int { return g.W * g.H }

// ID returns the state identifier of cell (x, y).
func (g *Grid) ID(x, y int) int {
	if x < 0 || x >= g.W || y < 0 || y >= g.H {
		panic(fmt.Sprintf("spatial: cell (%d,%d) outside %dx%d grid", x, y, g.W, g.H))
	}
	return y*g.W + x
}

// Cell returns the (x, y) cell coordinates of a state identifier.
func (g *Grid) Cell(id int) (x, y int) {
	if id < 0 || id >= g.NumStates() {
		panic(fmt.Sprintf("spatial: state %d outside grid with %d states", id, g.NumStates()))
	}
	return id % g.W, id / g.W
}

// Center returns the centre point of the state's cell in world
// coordinates.
func (g *Grid) Center(id int) Point {
	x, y := g.Cell(id)
	return Point{
		X: g.Origin.X + (float64(x)+0.5)*g.CellSize,
		Y: g.Origin.Y + (float64(y)+0.5)*g.CellSize,
	}
}

// Locate returns the state identifier containing the world point p and
// whether p falls inside the grid at all.
func (g *Grid) Locate(p Point) (int, bool) {
	cx := int((p.X - g.Origin.X) / g.CellSize)
	cy := int((p.Y - g.Origin.Y) / g.CellSize)
	if p.X < g.Origin.X || p.Y < g.Origin.Y || cx >= g.W || cy >= g.H {
		return 0, false
	}
	return g.ID(cx, cy), true
}

// Neighbors4 returns the 4-connected neighbor state ids of a state.
func (g *Grid) Neighbors4(id int) []int {
	x, y := g.Cell(id)
	out := make([]int, 0, 4)
	if x > 0 {
		out = append(out, g.ID(x-1, y))
	}
	if x < g.W-1 {
		out = append(out, g.ID(x+1, y))
	}
	if y > 0 {
		out = append(out, g.ID(x, y-1))
	}
	if y < g.H-1 {
		out = append(out, g.ID(x, y+1))
	}
	return out
}

// Neighbors8 returns the 8-connected neighbor state ids of a state.
func (g *Grid) Neighbors8(id int) []int {
	x, y := g.Cell(id)
	out := make([]int, 0, 8)
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			nx, ny := x+dx, y+dy
			if nx >= 0 && nx < g.W && ny >= 0 && ny < g.H {
				out = append(out, g.ID(nx, ny))
			}
		}
	}
	return out
}

// Bounds returns the world-coordinate bounding rectangle of the grid.
func (g *Grid) Bounds() Rect {
	return Rect{
		MinX: g.Origin.X,
		MinY: g.Origin.Y,
		MaxX: g.Origin.X + float64(g.W)*g.CellSize,
		MaxY: g.Origin.Y + float64(g.H)*g.CellSize,
	}
}

// StatesIn returns, in ascending order, the identifiers of all states
// whose cell centre lies inside region r. For Rect regions it exploits
// the raster structure directly; other regions fall back to a bounding-
// box scan.
func (g *Grid) StatesIn(r Region) []int {
	bb := r.BBox()
	gb := g.Bounds()
	if !bb.Intersects(gb) {
		return nil
	}
	// Clip the candidate cell range to the region's bounding box.
	minX := int((bb.MinX - g.Origin.X) / g.CellSize)
	maxX := int((bb.MaxX - g.Origin.X) / g.CellSize)
	minY := int((bb.MinY - g.Origin.Y) / g.CellSize)
	maxY := int((bb.MaxY - g.Origin.Y) / g.CellSize)
	minX = clamp(minX, 0, g.W-1)
	maxX = clamp(maxX, 0, g.W-1)
	minY = clamp(minY, 0, g.H-1)
	maxY = clamp(maxY, 0, g.H-1)
	var out []int
	for y := minY; y <= maxY; y++ {
		for x := minX; x <= maxX; x++ {
			id := g.ID(x, y)
			if r.Contains(g.Center(id)) {
				out = append(out, id)
			}
		}
	}
	return out
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// LineSpace is a 1-D state space: states 0…n−1 arranged on a line with
// unit spacing. The synthetic datasets of Table I live in this space
// (locality via max_step is interval-shaped).
type LineSpace struct {
	N int
}

// NewLineSpace returns a 1-D space with n states.
func NewLineSpace(n int) *LineSpace {
	if n <= 0 {
		panic(fmt.Sprintf("spatial: invalid line space size %d", n))
	}
	return &LineSpace{N: n}
}

// NumStates returns |S|.
func (l *LineSpace) NumStates() int { return l.N }

// Center returns the embedding of state id on the x-axis.
func (l *LineSpace) Center(id int) Point {
	if id < 0 || id >= l.N {
		panic(fmt.Sprintf("spatial: state %d outside line space of %d", id, l.N))
	}
	return Point{X: float64(id) + 0.5}
}

// StatesIn returns the states whose centre lies in region r.
func (l *LineSpace) StatesIn(r Region) []int {
	bb := r.BBox()
	lo := clamp(int(bb.MinX), 0, l.N-1)
	hi := clamp(int(bb.MaxX), 0, l.N-1)
	var out []int
	for id := lo; id <= hi; id++ {
		if r.Contains(l.Center(id)) {
			out = append(out, id)
		}
	}
	return out
}

// Interval returns states [lo, hi] clipped to the space, ascending. This
// is the "states [100,120]" form used throughout the paper's evaluation.
func (l *LineSpace) Interval(lo, hi int) []int {
	lo = clamp(lo, 0, l.N-1)
	hi = clamp(hi, 0, l.N-1)
	if hi < lo {
		return nil
	}
	out := make([]int, 0, hi-lo+1)
	for id := lo; id <= hi; id++ {
		out = append(out, id)
	}
	return out
}

// StateSpace is the interface shared by the concrete spaces: a finite
// state set embedded in the plane, resolvable against query regions.
type StateSpace interface {
	NumStates() int
	Center(id int) Point
	StatesIn(r Region) []int
}

var (
	_ StateSpace = (*Grid)(nil)
	_ StateSpace = (*LineSpace)(nil)
)
