package spatial

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGridIDCellRoundTrip(t *testing.T) {
	g := NewGrid(7, 5)
	if g.NumStates() != 35 {
		t.Fatalf("NumStates = %d, want 35", g.NumStates())
	}
	for id := 0; id < g.NumStates(); id++ {
		x, y := g.Cell(id)
		if g.ID(x, y) != id {
			t.Fatalf("round trip failed for id %d", id)
		}
	}
}

func TestGridIDOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds ID did not panic")
		}
	}()
	NewGrid(3, 3).ID(3, 0)
}

func TestGridCellOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds Cell did not panic")
		}
	}()
	NewGrid(3, 3).Cell(9)
}

func TestNewGridInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid grid did not panic")
		}
	}()
	NewGrid(0, 5)
}

func TestGridCenterAndLocate(t *testing.T) {
	g := NewGrid(4, 4)
	g.CellSize = 2
	g.Origin = Point{X: 10, Y: 20}
	id := g.ID(1, 2)
	c := g.Center(id)
	if c.X != 13 || c.Y != 25 {
		t.Errorf("Center = %+v, want (13, 25)", c)
	}
	got, ok := g.Locate(c)
	if !ok || got != id {
		t.Errorf("Locate(center) = (%d, %v), want (%d, true)", got, ok, id)
	}
	if _, ok := g.Locate(Point{X: 9, Y: 20}); ok {
		t.Error("Locate outside grid should fail")
	}
	if _, ok := g.Locate(Point{X: 100, Y: 25}); ok {
		t.Error("Locate beyond max should fail")
	}
}

func TestGridNeighbors(t *testing.T) {
	g := NewGrid(3, 3)
	center := g.ID(1, 1)
	if got := len(g.Neighbors4(center)); got != 4 {
		t.Errorf("center Neighbors4 = %d, want 4", got)
	}
	if got := len(g.Neighbors8(center)); got != 8 {
		t.Errorf("center Neighbors8 = %d, want 8", got)
	}
	corner := g.ID(0, 0)
	if got := len(g.Neighbors4(corner)); got != 2 {
		t.Errorf("corner Neighbors4 = %d, want 2", got)
	}
	if got := len(g.Neighbors8(corner)); got != 3 {
		t.Errorf("corner Neighbors8 = %d, want 3", got)
	}
}

func TestGridStatesInRect(t *testing.T) {
	g := NewGrid(10, 10)
	// Cells (2..4, 3..5): 9 states.
	got := g.StatesIn(NewRect(2, 3, 5, 6))
	if len(got) != 9 {
		t.Fatalf("StatesIn returned %d states, want 9: %v", len(got), got)
	}
	for _, id := range got {
		x, y := g.Cell(id)
		if x < 2 || x > 4 || y < 3 || y > 5 {
			t.Errorf("state (%d,%d) outside query", x, y)
		}
	}
}

func TestGridStatesInDisjointRect(t *testing.T) {
	g := NewGrid(5, 5)
	if got := g.StatesIn(NewRect(100, 100, 200, 200)); got != nil {
		t.Errorf("disjoint query returned %v", got)
	}
}

func TestGridStatesInCircle(t *testing.T) {
	g := NewGrid(10, 10)
	got := g.StatesIn(Circle{Center: Point{X: 5, Y: 5}, Radius: 1.2})
	// Centres within 1.2 of (5,5): (4.5,4.5) d=.707, (4.5,5.5), (5.5,4.5),
	// (5.5,5.5) — all .707. Next ring is ≥1.58. So exactly 4.
	if len(got) != 4 {
		t.Errorf("circle query returned %d states, want 4: %v", len(got), got)
	}
}

func TestGridStatesInMatchesBruteForceQuick(t *testing.T) {
	g := NewGrid(13, 11)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRect(rng.Float64()*15-1, rng.Float64()*13-1, rng.Float64()*15-1, rng.Float64()*13-1)
		got := g.StatesIn(r)
		want := map[int]bool{}
		for id := 0; id < g.NumStates(); id++ {
			if r.Contains(g.Center(id)) {
				want[id] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, id := range got {
			if !want[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLineSpace(t *testing.T) {
	l := NewLineSpace(100)
	if l.NumStates() != 100 {
		t.Fatalf("NumStates = %d", l.NumStates())
	}
	if c := l.Center(7); c.X != 7.5 || c.Y != 0 {
		t.Errorf("Center(7) = %+v", c)
	}
	got := l.Interval(10, 12)
	if len(got) != 3 || got[0] != 10 || got[2] != 12 {
		t.Errorf("Interval = %v", got)
	}
	// Clipping.
	if got := l.Interval(-5, 1); len(got) != 2 {
		t.Errorf("clipped Interval = %v", got)
	}
	if got := l.Interval(98, 200); len(got) != 2 {
		t.Errorf("clipped Interval = %v", got)
	}
	if got := l.Interval(5, 2); got != nil {
		t.Errorf("inverted Interval = %v, want nil", got)
	}
}

func TestLineSpaceStatesIn(t *testing.T) {
	l := NewLineSpace(50)
	got := l.StatesIn(NewRect(10, -1, 20, 1))
	// Centres 10.5 … 19.5 → states 10..19.
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Errorf("StatesIn = %v", got)
	}
}

func TestLineSpaceCenterOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Center did not panic")
		}
	}()
	NewLineSpace(5).Center(5)
}
