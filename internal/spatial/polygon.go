package spatial

import "fmt"

// Polygon is a simple (non-self-intersecting) polygon region given by
// its vertices in order (either winding). The boundary counts as
// inside. Real query windows — a shipping lane, a council district —
// are polygons more often than rectangles.
type Polygon struct {
	Vertices []Point
}

// NewPolygon validates and wraps a vertex list (≥ 3 vertices).
func NewPolygon(vertices []Point) (Polygon, error) {
	if len(vertices) < 3 {
		return Polygon{}, fmt.Errorf("spatial: polygon needs ≥ 3 vertices, got %d", len(vertices))
	}
	return Polygon{Vertices: append([]Point(nil), vertices...)}, nil
}

// Contains reports whether p lies inside the polygon (boundary
// inclusive), by the even-odd ray-casting rule with an explicit
// boundary check for robustness on edges and vertices.
func (pg Polygon) Contains(p Point) bool {
	n := len(pg.Vertices)
	if n < 3 {
		return false
	}
	// Boundary check first: point on any edge counts as inside.
	for i := 0; i < n; i++ {
		a := pg.Vertices[i]
		b := pg.Vertices[(i+1)%n]
		if onSegment(a, b, p) {
			return true
		}
	}
	// Even-odd rule: cast a ray in +x and count crossings.
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := pg.Vertices[i], pg.Vertices[j]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			xCross := (b.X-a.X)*(p.Y-a.Y)/(b.Y-a.Y) + a.X
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// BBox returns the polygon's bounding rectangle.
func (pg Polygon) BBox() Rect {
	if len(pg.Vertices) == 0 {
		return Rect{}
	}
	bb := Rect{
		MinX: pg.Vertices[0].X, MinY: pg.Vertices[0].Y,
		MaxX: pg.Vertices[0].X, MaxY: pg.Vertices[0].Y,
	}
	for _, v := range pg.Vertices[1:] {
		if v.X < bb.MinX {
			bb.MinX = v.X
		}
		if v.X > bb.MaxX {
			bb.MaxX = v.X
		}
		if v.Y < bb.MinY {
			bb.MinY = v.Y
		}
		if v.Y > bb.MaxY {
			bb.MaxY = v.Y
		}
	}
	return bb
}

// Area returns the polygon's unsigned area (shoelace formula).
func (pg Polygon) Area() float64 {
	n := len(pg.Vertices)
	sum := 0.0
	for i := 0; i < n; i++ {
		a := pg.Vertices[i]
		b := pg.Vertices[(i+1)%n]
		sum += a.X*b.Y - b.X*a.Y
	}
	if sum < 0 {
		sum = -sum
	}
	return sum / 2
}

// onSegment reports whether p lies on the closed segment ab, within a
// small tolerance for collinearity.
func onSegment(a, b, p Point) bool {
	const eps = 1e-12
	cross := (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
	if cross > eps || cross < -eps {
		return false
	}
	dot := (p.X-a.X)*(b.X-a.X) + (p.Y-a.Y)*(b.Y-a.Y)
	if dot < -eps {
		return false
	}
	sq := (b.X-a.X)*(b.X-a.X) + (b.Y-a.Y)*(b.Y-a.Y)
	return dot <= sq+eps
}

var _ Region = Polygon{}
