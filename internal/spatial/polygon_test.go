package spatial

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func unitSquare(t *testing.T) Polygon {
	t.Helper()
	pg, err := NewPolygon([]Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}})
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func TestNewPolygonValidation(t *testing.T) {
	if _, err := NewPolygon([]Point{{0, 0}, {1, 1}}); err == nil {
		t.Error("2-vertex polygon accepted")
	}
	verts := []Point{{0, 0}, {1, 0}, {0, 1}}
	pg, err := NewPolygon(verts)
	if err != nil {
		t.Fatal(err)
	}
	// The constructor must copy its input.
	verts[0].X = 99
	if pg.Vertices[0].X == 99 {
		t.Error("NewPolygon aliases caller's slice")
	}
}

func TestPolygonContainsSquare(t *testing.T) {
	pg := unitSquare(t)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{0, 0}, true},   // corner
		{Point{5, 0}, true},   // edge
		{Point{10, 10}, true}, // far corner
		{Point{10.5, 5}, false},
		{Point{-0.5, 5}, false},
		{Point{5, 11}, false},
	}
	for _, c := range cases {
		if got := pg.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPolygonConcave(t *testing.T) {
	// L-shape: the notch is outside.
	pg, err := NewPolygon([]Point{
		{0, 0}, {10, 0}, {10, 4}, {4, 4}, {4, 10}, {0, 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !pg.Contains(Point{2, 8}) {
		t.Error("upper arm of L rejected")
	}
	if !pg.Contains(Point{8, 2}) {
		t.Error("lower arm of L rejected")
	}
	if pg.Contains(Point{8, 8}) {
		t.Error("notch accepted")
	}
}

func TestPolygonMatchesRectQuick(t *testing.T) {
	// A rectangle polygon must agree with Rect everywhere.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRect(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		pg, err := NewPolygon([]Point{
			{r.MinX, r.MinY}, {r.MaxX, r.MinY}, {r.MaxX, r.MaxY}, {r.MinX, r.MaxY},
		})
		if err != nil {
			return false
		}
		for trial := 0; trial < 60; trial++ {
			p := Point{rng.Float64()*12 - 1, rng.Float64()*12 - 1}
			if pg.Contains(p) != r.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPolygonBBoxAndArea(t *testing.T) {
	pg := unitSquare(t)
	bb := pg.BBox()
	if bb != NewRect(0, 0, 10, 10) {
		t.Errorf("BBox = %+v", bb)
	}
	if math.Abs(pg.Area()-100) > 1e-12 {
		t.Errorf("Area = %g, want 100", pg.Area())
	}
	// Winding direction must not affect area.
	rev, err := NewPolygon([]Point{{0, 10}, {10, 10}, {10, 0}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rev.Area()-100) > 1e-12 {
		t.Errorf("reversed Area = %g, want 100", rev.Area())
	}
	if (Polygon{}).BBox() != (Rect{}) {
		t.Error("empty polygon BBox should be zero rect")
	}
	if (Polygon{}).Contains(Point{0, 0}) {
		t.Error("empty polygon contains a point")
	}
}

func TestPolygonWithGridStatesIn(t *testing.T) {
	// End-to-end: resolve a triangular region against a grid.
	g := NewGrid(10, 10)
	tri, err := NewPolygon([]Point{{0, 0}, {10, 0}, {0, 10}})
	if err != nil {
		t.Fatal(err)
	}
	states := g.StatesIn(tri)
	// The triangle covers cells whose centre (x+.5, y+.5) satisfies
	// x + y + 1 < 10 → 45 cells... boundary-inclusive: x+y+1 ≤ 10.
	want := 0
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			if float64(x)+0.5+float64(y)+0.5 <= 10 {
				want++
			}
		}
	}
	if len(states) != want {
		t.Errorf("triangle covers %d cells, want %d", len(states), want)
	}
	// And via the R-tree the same set.
	tr := IndexSpace(g, 8)
	fromTree := tr.Search(tri)
	if len(fromTree) != len(states) {
		t.Errorf("R-tree found %d, grid %d", len(fromTree), len(states))
	}
}
