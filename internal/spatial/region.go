package spatial

import (
	"fmt"
	"math"
)

// Region is a (not necessarily connected) subset of the plane used as the
// spatial part S□ of a query window. Regions resolve against a state
// space via StatesIn.
type Region interface {
	// Contains reports whether the point lies inside the region.
	Contains(p Point) bool
	// BBox returns an axis-aligned rectangle enclosing the region.
	BBox() Rect
}

// Resolver maps a region to the identifiers of the states it covers.
// Grid and LineSpace resolve by raster arithmetic; RTree resolves any
// indexed state space (road networks included) by spatial search.
type Resolver interface {
	StatesIn(r Region) []int
}

// Rect is an axis-aligned rectangle, closed on all sides.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning the two corner points in any
// order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	return Rect{
		MinX: math.Min(x1, x2),
		MinY: math.Min(y1, y2),
		MaxX: math.Max(x1, x2),
		MaxY: math.Max(y1, y2),
	}
}

// Contains reports whether p lies inside the rectangle (borders
// inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// BBox returns the rectangle itself.
func (r Rect) BBox() Rect { return r }

// Intersects reports whether two rectangles overlap (borders count).
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Union returns the smallest rectangle covering both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, o.MinX),
		MinY: math.Min(r.MinY, o.MinY),
		MaxX: math.Max(r.MaxX, o.MaxX),
		MaxY: math.Max(r.MaxY, o.MaxY),
	}
}

// Area returns the rectangle's area.
func (r Rect) Area() float64 {
	return math.Max(0, r.MaxX-r.MinX) * math.Max(0, r.MaxY-r.MinY)
}

// Enlargement returns how much r's area grows when extended to cover o.
func (r Rect) Enlargement(o Rect) float64 {
	return r.Union(o).Area() - r.Area()
}

// Center returns the rectangle's centre point.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Circle is a disk region.
type Circle struct {
	Center Point
	Radius float64
}

// Contains reports whether p lies inside the disk (border inclusive).
func (c Circle) Contains(p Point) bool {
	dx, dy := p.X-c.Center.X, p.Y-c.Center.Y
	return dx*dx+dy*dy <= c.Radius*c.Radius
}

// BBox returns the disk's bounding square.
func (c Circle) BBox() Rect {
	return Rect{
		MinX: c.Center.X - c.Radius,
		MinY: c.Center.Y - c.Radius,
		MaxX: c.Center.X + c.Radius,
		MaxY: c.Center.Y + c.Radius,
	}
}

// Union is a region composed of several member regions; the paper allows
// query regions to be arbitrary, not necessarily connected, subsets of
// space.
type Union []Region

// Contains reports whether any member contains p.
func (u Union) Contains(p Point) bool {
	for _, r := range u {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// BBox returns the union of member bounding boxes.
func (u Union) BBox() Rect {
	if len(u) == 0 {
		return Rect{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1)}
	}
	bb := u[0].BBox()
	for _, r := range u[1:] {
		bb = bb.Union(r.BBox())
	}
	return bb
}

// Difference is base minus subtracted: points inside Base but outside
// Sub. Used to express "inside the monitoring area but outside the
// shipping lane" style windows.
type Difference struct {
	Base Region
	Sub  Region
}

// Contains reports membership in the difference.
func (d Difference) Contains(p Point) bool {
	return d.Base.Contains(p) && !d.Sub.Contains(p)
}

// BBox returns the base's bounding box (a superset of the difference).
func (d Difference) BBox() Rect { return d.Base.BBox() }
