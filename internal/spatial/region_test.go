package spatial

import (
	"math"
	"testing"
)

func TestNewRectNormalizesCorners(t *testing.T) {
	r := NewRect(5, 6, 1, 2)
	if r.MinX != 1 || r.MinY != 2 || r.MaxX != 5 || r.MaxY != 6 {
		t.Errorf("NewRect = %+v", r)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{0, 0}, true},   // border inclusive
		{Point{10, 10}, true}, // border inclusive
		{Point{10.01, 5}, false},
		{Point{-0.01, 5}, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%+v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	if !a.Intersects(NewRect(5, 5, 15, 15)) {
		t.Error("overlapping rects do not intersect")
	}
	if !a.Intersects(NewRect(10, 0, 20, 10)) {
		t.Error("edge-touching rects should intersect")
	}
	if a.Intersects(NewRect(11, 0, 20, 10)) {
		t.Error("disjoint rects intersect")
	}
}

func TestRectUnionAreaEnlargement(t *testing.T) {
	a := NewRect(0, 0, 2, 2)
	b := NewRect(3, 3, 4, 4)
	u := a.Union(b)
	if u.MinX != 0 || u.MaxX != 4 || u.MinY != 0 || u.MaxY != 4 {
		t.Errorf("Union = %+v", u)
	}
	if a.Area() != 4 {
		t.Errorf("Area = %g", a.Area())
	}
	if got := a.Enlargement(b); got != 12 {
		t.Errorf("Enlargement = %g, want 12", got)
	}
	if c := u.Center(); c.X != 2 || c.Y != 2 {
		t.Errorf("Center = %+v", c)
	}
}

func TestCircle(t *testing.T) {
	c := Circle{Center: Point{3, 4}, Radius: 5}
	if !c.Contains(Point{0, 0}) {
		t.Error("border point rejected")
	}
	if !c.Contains(Point{3, 4}) {
		t.Error("centre rejected")
	}
	if c.Contains(Point{9, 4}) {
		t.Error("outside point accepted")
	}
	bb := c.BBox()
	if bb.MinX != -2 || bb.MaxX != 8 || bb.MinY != -1 || bb.MaxY != 9 {
		t.Errorf("BBox = %+v", bb)
	}
}

func TestUnionRegion(t *testing.T) {
	u := Union{NewRect(0, 0, 1, 1), NewRect(5, 5, 6, 6)}
	if !u.Contains(Point{0.5, 0.5}) || !u.Contains(Point{5.5, 5.5}) {
		t.Error("union rejects member points")
	}
	if u.Contains(Point{3, 3}) {
		t.Error("union accepts gap point")
	}
	bb := u.BBox()
	if bb.MinX != 0 || bb.MaxX != 6 {
		t.Errorf("union BBox = %+v", bb)
	}
}

func TestEmptyUnionBBox(t *testing.T) {
	bb := Union{}.BBox()
	if !math.IsInf(bb.MinX, 1) || !math.IsInf(bb.MaxX, -1) {
		t.Errorf("empty union BBox = %+v, want inverted infinite box", bb)
	}
	if (Union{}).Contains(Point{0, 0}) {
		t.Error("empty union contains a point")
	}
}

func TestDifferenceRegion(t *testing.T) {
	d := Difference{Base: NewRect(0, 0, 10, 10), Sub: Circle{Center: Point{5, 5}, Radius: 2}}
	if !d.Contains(Point{1, 1}) {
		t.Error("difference rejects base-only point")
	}
	if d.Contains(Point{5, 5}) {
		t.Error("difference accepts subtracted point")
	}
	if d.BBox() != NewRect(0, 0, 10, 10) {
		t.Errorf("difference BBox = %+v", d.BBox())
	}
}

func TestRectString(t *testing.T) {
	if s := NewRect(0, 1, 2, 3).String(); s != "[0,2]x[1,3]" {
		t.Errorf("String = %q", s)
	}
}
