package spatial

import (
	"fmt"
	"math"
	"sort"
)

// RTree is a static R-tree over point data (state centres), bulk-loaded
// with the Sort-Tile-Recursive (STR) algorithm. It answers rectangle and
// generic region queries with the usual branch-and-bound descent.
//
// The tree indexes (point, state-id) pairs. It exists because resolving a
// query region against an irregular state space — a road network — cannot
// exploit raster arithmetic the way Grid.StatesIn does.
type RTree struct {
	root   *rnode
	size   int
	degree int
}

type rnode struct {
	bbox     Rect
	children []*rnode // nil for leaves
	entries  []Entry  // nil for internal nodes
}

// Entry is an indexed point with its state identifier.
type Entry struct {
	P  Point
	ID int
}

// DefaultDegree is the default R-tree fan-out.
const DefaultDegree = 16

// BulkLoad builds an STR-packed R-tree over the entries with the given
// node degree (fan-out). degree ≤ 0 selects DefaultDegree. The input
// slice is reordered in place.
func BulkLoad(entries []Entry, degree int) *RTree {
	if degree <= 0 {
		degree = DefaultDegree
	}
	if degree < 2 {
		panic(fmt.Sprintf("spatial: R-tree degree %d < 2", degree))
	}
	t := &RTree{size: len(entries), degree: degree}
	if len(entries) == 0 {
		return t
	}
	t.root = strPackLeaves(entries, degree)
	return t
}

// IndexSpace builds an R-tree over all states of a state space.
func IndexSpace(s StateSpace, degree int) *RTree {
	entries := make([]Entry, s.NumStates())
	for id := range entries {
		entries[id] = Entry{P: s.Center(id), ID: id}
	}
	return BulkLoad(entries, degree)
}

// strPackLeaves builds the leaf level with STR tiling, then packs upward.
func strPackLeaves(entries []Entry, degree int) *rnode {
	// Number of leaves and vertical slices: S = ceil(sqrt(P)) where
	// P = ceil(n/degree) — the classic STR recipe.
	n := len(entries)
	leafCount := (n + degree - 1) / degree
	slices := int(math.Ceil(math.Sqrt(float64(leafCount))))
	perSlice := slices * degree

	sort.Slice(entries, func(a, b int) bool { return entries[a].P.X < entries[b].P.X })
	var leaves []*rnode
	for lo := 0; lo < n; lo += perSlice {
		hi := lo + perSlice
		if hi > n {
			hi = n
		}
		slice := entries[lo:hi]
		sort.Slice(slice, func(a, b int) bool { return slice[a].P.Y < slice[b].P.Y })
		for s := 0; s < len(slice); s += degree {
			e := s + degree
			if e > len(slice) {
				e = len(slice)
			}
			leaf := &rnode{entries: append([]Entry(nil), slice[s:e]...)}
			leaf.bbox = pointsBBox(leaf.entries)
			leaves = append(leaves, leaf)
		}
	}
	return packUp(leaves, degree)
}

// packUp groups nodes into parents of the given degree until one root
// remains. Input nodes are already spatially clustered by STR, so simple
// sequential grouping preserves locality.
func packUp(nodes []*rnode, degree int) *rnode {
	for len(nodes) > 1 {
		var parents []*rnode
		for lo := 0; lo < len(nodes); lo += degree {
			hi := lo + degree
			if hi > len(nodes) {
				hi = len(nodes)
			}
			p := &rnode{children: append([]*rnode(nil), nodes[lo:hi]...)}
			p.bbox = p.children[0].bbox
			for _, c := range p.children[1:] {
				p.bbox = p.bbox.Union(c.bbox)
			}
			parents = append(parents, p)
		}
		nodes = parents
	}
	return nodes[0]
}

func pointsBBox(es []Entry) Rect {
	bb := Rect{MinX: es[0].P.X, MinY: es[0].P.Y, MaxX: es[0].P.X, MaxY: es[0].P.Y}
	for _, e := range es[1:] {
		bb.MinX = math.Min(bb.MinX, e.P.X)
		bb.MinY = math.Min(bb.MinY, e.P.Y)
		bb.MaxX = math.Max(bb.MaxX, e.P.X)
		bb.MaxY = math.Max(bb.MaxY, e.P.Y)
	}
	return bb
}

// Len returns the number of indexed entries.
func (t *RTree) Len() int { return t.size }

// Height returns the number of levels (0 for an empty tree).
func (t *RTree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.children == nil {
			break
		}
		n = n.children[0]
	}
	return h
}

// Search returns the ids of all entries inside region r, ascending.
func (t *RTree) Search(r Region) []int {
	if t.root == nil {
		return nil
	}
	var out []int
	bb := r.BBox()
	var walk func(n *rnode)
	walk = func(n *rnode) {
		if !n.bbox.Intersects(bb) {
			return
		}
		if n.children == nil {
			for _, e := range n.entries {
				if r.Contains(e.P) {
					out = append(out, e.ID)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	sort.Ints(out)
	return out
}

// SearchRect returns the ids of entries inside the rectangle, ascending.
func (t *RTree) SearchRect(r Rect) []int { return t.Search(r) }

// StatesIn is Search under the Resolver interface name, so an R-tree
// over a state space plugs directly into region-valued query requests.
func (t *RTree) StatesIn(r Region) []int { return t.Search(r) }

// Nearest returns the id of the indexed entry closest to p in Euclidean
// distance and that distance. The second return is math.Inf(1) when the
// tree is empty (id −1). Ties break toward the smaller id.
func (t *RTree) Nearest(p Point) (id int, dist float64) {
	id, dist = -1, math.Inf(1)
	if t.root == nil {
		return id, dist
	}
	var walk func(n *rnode)
	walk = func(n *rnode) {
		if minDist(n.bbox, p) >= dist {
			return
		}
		if n.children == nil {
			for _, e := range n.entries {
				d := math.Hypot(e.P.X-p.X, e.P.Y-p.Y)
				if d < dist || (d == dist && e.ID < id) {
					id, dist = e.ID, d
				}
			}
			return
		}
		// Visit children closest-first for tighter pruning.
		order := make([]int, len(n.children))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return minDist(n.children[order[a]].bbox, p) < minDist(n.children[order[b]].bbox, p)
		})
		for _, i := range order {
			walk(n.children[i])
		}
	}
	walk(t.root)
	return id, dist
}

// minDist returns the minimum distance from p to the rectangle (0 when p
// is inside).
func minDist(r Rect, p Point) float64 {
	dx := math.Max(0, math.Max(r.MinX-p.X, p.X-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-p.Y, p.Y-r.MaxY))
	return math.Hypot(dx, dy)
}

// KNearest returns the ids of the k entries closest to p, ordered by
// ascending distance (ties toward smaller id). Fewer than k are
// returned when the tree is smaller. The traversal is best-first with
// a bounded result heap, pruning nodes whose bounding box lies beyond
// the current k-th distance.
func (t *RTree) KNearest(p Point, k int) []int {
	if t.root == nil || k <= 0 {
		return nil
	}
	type cand struct {
		id   int
		dist float64
	}
	// Max-heap by distance, capped at k: best[0] is the current worst.
	var best []cand
	worse := func(a, b cand) bool {
		if a.dist != b.dist {
			return a.dist > b.dist
		}
		return a.id > b.id
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(best) && worse(best[l], best[m]) {
				m = l
			}
			if r < len(best) && worse(best[r], best[m]) {
				m = r
			}
			if m == i {
				return
			}
			best[i], best[m] = best[m], best[i]
			i = m
		}
	}
	siftUp := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !worse(best[i], best[parent]) {
				return
			}
			best[i], best[parent] = best[parent], best[i]
			i = parent
		}
	}
	bound := func() float64 {
		if len(best) < k {
			return math.Inf(1)
		}
		return best[0].dist
	}
	var walk func(n *rnode)
	walk = func(n *rnode) {
		if minDist(n.bbox, p) > bound() {
			return
		}
		if n.children == nil {
			for _, e := range n.entries {
				d := math.Hypot(e.P.X-p.X, e.P.Y-p.Y)
				c := cand{id: e.ID, dist: d}
				if len(best) < k {
					best = append(best, c)
					siftUp(len(best) - 1)
				} else if worse(best[0], c) {
					best[0] = c
					siftDown(0)
				}
			}
			return
		}
		order := make([]int, len(n.children))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return minDist(n.children[order[a]].bbox, p) < minDist(n.children[order[b]].bbox, p)
		})
		for _, i := range order {
			walk(n.children[i])
		}
	}
	walk(t.root)
	sort.Slice(best, func(a, b int) bool { return worse(best[b], best[a]) })
	out := make([]int, len(best))
	for i, c := range best {
		out[i] = c.id
	}
	return out
}
