package spatial

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBulkLoadEmpty(t *testing.T) {
	tr := BulkLoad(nil, 0)
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Errorf("empty tree Len=%d Height=%d", tr.Len(), tr.Height())
	}
	if got := tr.Search(NewRect(0, 0, 1, 1)); got != nil {
		t.Errorf("empty tree Search = %v", got)
	}
	if id, d := tr.Nearest(Point{}); id != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty tree Nearest = (%d, %g)", id, d)
	}
}

func TestBulkLoadSingle(t *testing.T) {
	tr := BulkLoad([]Entry{{P: Point{1, 2}, ID: 7}}, 0)
	if tr.Len() != 1 || tr.Height() != 1 {
		t.Errorf("single tree Len=%d Height=%d", tr.Len(), tr.Height())
	}
	got := tr.Search(NewRect(0, 0, 3, 3))
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("Search = %v, want [7]", got)
	}
}

func TestBulkLoadDegreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("degree 1 did not panic")
		}
	}()
	BulkLoad([]Entry{{ID: 0}}, 1)
}

func TestIndexSpaceSearchMatchesGrid(t *testing.T) {
	g := NewGrid(20, 20)
	tr := IndexSpace(g, 8)
	if tr.Len() != g.NumStates() {
		t.Fatalf("tree Len = %d, want %d", tr.Len(), g.NumStates())
	}
	regions := []Region{
		NewRect(3, 3, 9, 7),
		Circle{Center: Point{10, 10}, Radius: 4.5},
		Union{NewRect(0, 0, 2, 2), NewRect(15, 15, 19, 19)},
	}
	for _, r := range regions {
		got := tr.Search(r)
		want := g.StatesIn(r)
		if len(got) != len(want) {
			t.Errorf("region %v: tree found %d, grid %d", r.BBox(), len(got), len(want))
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("region %v: mismatch at %d: %d vs %d", r.BBox(), i, got[i], want[i])
				break
			}
		}
	}
}

func TestSearchMatchesLinearScanQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{P: Point{rng.Float64() * 100, rng.Float64() * 100}, ID: i}
		}
		// Keep a copy: BulkLoad reorders.
		copies := append([]Entry(nil), entries...)
		tr := BulkLoad(entries, 2+rng.Intn(14))
		r := NewRect(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		got := tr.Search(r)
		want := map[int]bool{}
		for _, e := range copies {
			if r.Contains(e.P) {
				want[e.ID] = true
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, id := range got {
			if !want[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestNearestMatchesLinearScanQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{P: Point{rng.Float64() * 50, rng.Float64() * 50}, ID: i}
		}
		copies := append([]Entry(nil), entries...)
		tr := BulkLoad(entries, 2+rng.Intn(10))
		q := Point{rng.Float64() * 60, rng.Float64() * 60}
		gotID, gotD := tr.Nearest(q)
		wantD := math.Inf(1)
		for _, e := range copies {
			d := math.Hypot(e.P.X-q.X, e.P.Y-q.Y)
			if d < wantD {
				wantD = d
			}
		}
		return math.Abs(gotD-wantD) < 1e-12 && gotID >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestRTreeHeightLogarithmic(t *testing.T) {
	g := NewGrid(100, 100) // 10,000 points
	tr := IndexSpace(g, 16)
	// With degree 16: leaves ≈ 625, level2 ≈ 40, level3 ≈ 3, root. So
	// height 4 (leaves + 3 internal levels).
	if h := tr.Height(); h < 3 || h > 5 {
		t.Errorf("Height = %d, want 3-5 for 10k points at degree 16", h)
	}
}

func TestMinDist(t *testing.T) {
	r := NewRect(0, 0, 2, 2)
	if d := minDist(r, Point{1, 1}); d != 0 {
		t.Errorf("inside minDist = %g", d)
	}
	if d := minDist(r, Point{5, 1}); d != 3 {
		t.Errorf("side minDist = %g, want 3", d)
	}
	if d := minDist(r, Point{5, 6}); math.Abs(d-5) > 1e-12 {
		t.Errorf("corner minDist = %g, want 5", d)
	}
}

func TestKNearestMatchesLinearScanQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(150)
		entries := make([]Entry, n)
		for i := range entries {
			entries[i] = Entry{P: Point{rng.Float64() * 40, rng.Float64() * 40}, ID: i}
		}
		copies := append([]Entry(nil), entries...)
		tr := BulkLoad(entries, 2+rng.Intn(10))
		q := Point{rng.Float64() * 50, rng.Float64() * 50}
		k := 1 + rng.Intn(12)

		got := tr.KNearest(q, k)
		// Linear-scan reference sorted by (distance, id).
		type cand struct {
			id   int
			dist float64
		}
		ref := make([]cand, len(copies))
		for i, e := range copies {
			ref[i] = cand{e.ID, math.Hypot(e.P.X-q.X, e.P.Y-q.Y)}
		}
		sort.Slice(ref, func(a, b int) bool {
			if ref[a].dist != ref[b].dist {
				return ref[a].dist < ref[b].dist
			}
			return ref[a].id < ref[b].id
		})
		want := k
		if want > len(ref) {
			want = len(ref)
		}
		if len(got) != want {
			return false
		}
		for i := 0; i < want; i++ {
			if got[i] != ref[i].id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestKNearestEdgeCases(t *testing.T) {
	if got := BulkLoad(nil, 0).KNearest(Point{}, 3); got != nil {
		t.Errorf("empty tree KNearest = %v", got)
	}
	tr := BulkLoad([]Entry{{P: Point{1, 1}, ID: 9}}, 0)
	if got := tr.KNearest(Point{}, 0); got != nil {
		t.Errorf("k=0 KNearest = %v", got)
	}
	got := tr.KNearest(Point{}, 5)
	if len(got) != 1 || got[0] != 9 {
		t.Errorf("oversized k KNearest = %v", got)
	}
}
