package store

import (
	"bytes"
	"testing"

	"ust/internal/gen"
)

// benchParams is the load-benchmark corpus shape: |D|=1000 objects over
// |S|=10000 states (the paper's scale divided by ten to keep fixture
// construction inside benchmark budgets), every third object carrying a
// second observation.
var benchParams = gen.Params{
	NumObjects:   1000,
	NumStates:    10000,
	ObjectSpread: 5,
	StateSpread:  5,
	MaxStep:      40,
	Seed:         42,
}

// BenchmarkLoadDatabase compares the dataset load paths on the same
// corpus: the JSON interchange decoder, the v1 binary reader, the v2
// streaming reader, and the v2 zero-copy mapped decoder (the ustserve
// upload path). The mapped/v2 ratio over v1-json is the store format's
// headline acceptance number.
func BenchmarkLoadDatabase(b *testing.B) {
	db := genDB(b, benchParams)
	var jsonBuf, v1Buf, v2Buf bytes.Buffer
	if err := ExportJSON(&jsonBuf, db); err != nil {
		b.Fatal(err)
	}
	if err := SaveDatabaseV1(&v1Buf, db); err != nil {
		b.Fatal(err)
	}
	if err := SaveDatabase(&v2Buf, db); err != nil {
		b.Fatal(err)
	}

	b.Run("v1-json", func(b *testing.B) {
		data := jsonBuf.Bytes()
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ImportJSON(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v1-binary", func(b *testing.B) {
		data := v1Buf.Bytes()
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := LoadDatabase(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v2", func(b *testing.B) {
		data := v2Buf.Bytes()
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := LoadDatabase(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v2-mapped", func(b *testing.B) {
		data := v2Buf.Bytes()
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := LoadDatabaseMapped(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSaveDatabase measures the two binary writers on the same
// corpus.
func BenchmarkSaveDatabase(b *testing.B) {
	db := genDB(b, benchParams)
	var buf bytes.Buffer
	b.Run("v1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := SaveDatabaseV1(&buf, db); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := SaveDatabase(&buf, db); err != nil {
				b.Fatal(err)
			}
		}
	})
}
