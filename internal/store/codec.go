package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"ust/internal/core"
	"ust/internal/markov"
	"ust/internal/sparse"
)

// SaveChain writes a single chain.
func SaveChain(w io.Writer, c *markov.Chain) error {
	out := newWriter(w)
	out.write(magic[:])
	out.u32(formatVersion)
	out.u32(1) // section count
	writeChainSection(out, c)
	return out.finish()
}

// LoadChain reads a file written by SaveChain.
func LoadChain(r io.Reader) (*markov.Chain, error) {
	in, sections, err := openFile(r)
	if err != nil {
		return nil, err
	}
	var chain *markov.Chain
	for i := uint32(0); i < sections; i++ {
		tag, terr := readTag(in)
		if terr != nil {
			return nil, terr
		}
		switch tag {
		case tagChain:
			chain, err = readChain(in)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: unexpected section %q", ErrCorrupt, tag)
		}
	}
	if err := checkFooter(in); err != nil {
		return nil, err
	}
	if chain == nil {
		return nil, fmt.Errorf("%w: no chain section", ErrCorrupt)
	}
	return chain, nil
}

// SaveDatabase writes the default chain and all objects in the current
// (columnar, version-2) format.
func SaveDatabase(w io.Writer, db *core.Database) error {
	out := newWriter(w)
	out.write(magic[:])
	out.u32(formatVersion2)
	out.u32(2)
	writeChainSection(out, db.DefaultChain())
	writeColumnarSection(out, db)
	return out.finish()
}

// SaveDatabaseV1 writes the database in the legacy row-oriented
// version-1 format, for interchange with older readers.
func SaveDatabaseV1(w io.Writer, db *core.Database) error {
	out := newWriter(w)
	out.write(magic[:])
	out.u32(formatVersion)
	out.u32(2)
	writeChainSection(out, db.DefaultChain())
	writeObjectsSection(out, db)
	return out.finish()
}

// LoadDatabase reads a file written by SaveDatabase (either version).
func LoadDatabase(r io.Reader) (*core.Database, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return LoadDatabaseMapped(data)
}

// loadV1 decodes the sections of a version-1 body.
func loadV1(in *reader, sections uint32) (*core.Database, error) {
	var chain *markov.Chain
	var pending func(*core.Database) error
	var err error
	for i := uint32(0); i < sections; i++ {
		tag, terr := readTag(in)
		if terr != nil {
			return nil, terr
		}
		switch tag {
		case tagChain:
			chain, err = readChain(in)
			if err != nil {
				return nil, err
			}
		case tagObjects:
			pending, err = readObjects(in)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: unexpected section %q", ErrCorrupt, tag)
		}
	}
	if err := checkFooter(in); err != nil {
		return nil, err
	}
	if chain == nil {
		return nil, fmt.Errorf("%w: no chain section", ErrCorrupt)
	}
	db := core.NewDatabase(chain)
	if pending != nil {
		if err := pending(db); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// envelope verifies the footer guard and CRC of a complete in-memory
// file image *before* any parsing (so corrupt length prefixes can never
// reach an allocation) and returns the version, section count and body
// (everything before the footer, header included — offsets into body are
// file offsets).
func envelope(data []byte) (version, sections uint32, body []byte, err error) {
	const headerLen = 4 + 4 + 4 // magic + version + section count
	if len(data) < headerLen+8 {
		return 0, 0, nil, fmt.Errorf("%w: file too short (%d bytes)", ErrCorrupt, len(data))
	}
	body, footer := data[:len(data)-8], data[len(data)-8:]
	guard := binary.LittleEndian.Uint32(footer[:4])
	if guard != footerGuard {
		return 0, 0, nil, fmt.Errorf("%w: bad footer guard %#x", ErrCorrupt, guard)
	}
	if got, want := binary.LittleEndian.Uint32(footer[4:]), crc32.ChecksumIEEE(body); got != want {
		return 0, 0, nil, fmt.Errorf("%w: CRC mismatch: file %#x, computed %#x", ErrCorrupt, got, want)
	}
	if *(*[4]byte)(body[:4]) != magic {
		return 0, 0, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, body[:4])
	}
	version = binary.LittleEndian.Uint32(body[4:8])
	sections = binary.LittleEndian.Uint32(body[8:12])
	return version, sections, body, nil
}

// openFile buffers the entire stream, verifies the envelope, and returns
// a version-1 reader positioned after the header.
func openFile(r io.Reader) (*reader, uint32, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	version, sections, body, err := envelope(data)
	if err != nil {
		return nil, 0, err
	}
	if version != formatVersion {
		return nil, 0, fmt.Errorf("store: unsupported version %d (supported: %d)", version, formatVersion)
	}
	in := newReader(bytes.NewReader(body[12:]))
	return in, sections, nil
}

func readTag(in *reader) ([4]byte, error) {
	var tag [4]byte
	if !in.read(tag[:]) {
		return tag, fmt.Errorf("%w: short section tag: %v", ErrCorrupt, in.err)
	}
	return tag, nil
}

// checkFooter runs after all sections are parsed; the CRC was already
// verified by openFile, so the only remaining check is that no trailing
// garbage follows the last section.
func checkFooter(in *reader) error {
	var b [1]byte
	if _, err := in.r.Read(b[:]); err != io.EOF {
		return fmt.Errorf("%w: trailing bytes after last section", ErrCorrupt)
	}
	return nil
}

func writeChainSection(out *writer, c *markov.Chain) {
	out.write(tagChain[:])
	writeCSR(out, c.Matrix())
}

func writeCSR(out *writer, m *sparse.CSR) {
	rows, cols := m.Dims()
	out.u64(uint64(rows))
	out.u64(uint64(cols))
	rowLens := make([]int, rows)
	var colIdx []int
	var vals []float64
	for i := 0; i < rows; i++ {
		ci, vi := m.RowSlices(i)
		rowLens[i] = len(ci)
		colIdx = append(colIdx, ci...)
		vals = append(vals, vi...)
	}
	out.ints(rowLens)
	out.ints(colIdx)
	out.floats(vals)
}

func readChain(in *reader) (*markov.Chain, error) {
	m, err := readCSR(in)
	if err != nil {
		return nil, err
	}
	chain, err := markov.NewChain(m)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return chain, nil
}

func readCSR(in *reader) (*sparse.CSR, error) {
	rows := in.u64()
	cols := in.u64()
	rowLens := in.ints()
	colIdx := in.ints()
	vals := in.floats()
	if in.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, in.err)
	}
	if rows > maxSliceLen || cols > maxSliceLen || uint64(len(rowLens)) != rows {
		return nil, fmt.Errorf("%w: inconsistent matrix header", ErrCorrupt)
	}
	if len(colIdx) != len(vals) {
		return nil, fmt.Errorf("%w: %d columns but %d values", ErrCorrupt, len(colIdx), len(vals))
	}
	total := 0
	for _, l := range rowLens {
		total += l
	}
	if total != len(colIdx) {
		return nil, fmt.Errorf("%w: row lengths sum to %d, have %d entries", ErrCorrupt, total, len(colIdx))
	}
	pos := 0
	nCols := int(cols)
	for _, j := range colIdx {
		if j >= nCols {
			return nil, fmt.Errorf("%w: column %d outside %d", ErrCorrupt, j, nCols)
		}
	}
	m := sparse.FromRows(int(rows), nCols, func(i int) ([]int, []float64) {
		l := rowLens[i]
		ci := colIdx[pos : pos+l]
		vi := vals[pos : pos+l]
		pos += l
		return ci, vi
	})
	return m, nil
}

func writeObjectsSection(out *writer, db *core.Database) {
	out.write(tagObjects[:])
	objs := db.Objects()
	out.u64(uint64(len(objs)))
	for _, o := range objs {
		out.u64(uint64(o.ID))
		if o.Chain != nil {
			out.u32(1)
			writeCSR(out, o.Chain.Matrix())
		} else {
			out.u32(0)
		}
		out.u64(uint64(len(o.Observations)))
		for _, ob := range o.Observations {
			out.u64(uint64(ob.Time))
			sup := ob.PDF.Support()
			vals := make([]float64, len(sup))
			for k, s := range sup {
				vals[k] = ob.PDF.P(s)
			}
			out.u64(uint64(ob.PDF.NumStates()))
			out.ints(sup)
			out.floats(vals)
		}
	}
}

// readObjects decodes the object section into a deferred insertion
// function; the database cannot be built until the chain section is
// known, and sections may arrive in either order.
func readObjects(in *reader) (func(*core.Database) error, error) {
	count := in.u64()
	if in.err != nil || count > maxSliceLen {
		return nil, fmt.Errorf("%w: bad object count", ErrCorrupt)
	}
	type objRec struct {
		id    int
		chain *markov.Chain
		obs   []core.Observation
	}
	recs := make([]objRec, 0, count)
	for i := uint64(0); i < count; i++ {
		var rec objRec
		rec.id = int(in.u64())
		hasChain := in.u32()
		if in.err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, in.err)
		}
		if hasChain == 1 {
			c, err := readChain(in)
			if err != nil {
				return nil, err
			}
			rec.chain = c
		} else if hasChain != 0 {
			return nil, fmt.Errorf("%w: bad chain flag %d", ErrCorrupt, hasChain)
		}
		nObs := in.u64()
		if in.err != nil || nObs > maxSliceLen {
			return nil, fmt.Errorf("%w: bad observation count", ErrCorrupt)
		}
		for k := uint64(0); k < nObs; k++ {
			tm := int(in.u64())
			nU := in.u64()
			if nU == 0 || nU > maxSliceLen {
				return nil, fmt.Errorf("%w: observation pdf over %d states", ErrCorrupt, nU)
			}
			n := int(nU)
			idx := in.ints()
			vals := in.floats()
			if in.err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, in.err)
			}
			pdf, err := markov.WeightedOver(n, idx, vals)
			if err != nil {
				return nil, fmt.Errorf("%w: bad observation pdf: %v", ErrCorrupt, err)
			}
			rec.obs = append(rec.obs, core.Observation{Time: tm, PDF: pdf})
		}
		recs = append(recs, rec)
	}
	return func(db *core.Database) error {
		for _, rec := range recs {
			o, err := core.NewObject(rec.id, rec.chain, rec.obs...)
			if err != nil {
				return fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			if err := db.Add(o); err != nil {
				return fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
		}
		return nil
	}, nil
}
