// Package store persists chains and object databases in a compact,
// checksummed binary format, plus a JSON export for interoperability.
//
// Binary envelope, shared by both format versions (all integers
// little-endian):
//
//	magic    [4]byte  "USTD"
//	version  uint32   1 or 2
//	count    uint32   number of sections
//	sections          repeated count times:
//	  tag    [4]byte  "CHN0" | "OBJ0" | "OBC0"
//	  payload          tag-specific encoding
//	footer   uint32   0xC5C5C5C5 guard
//	crc      uint32   CRC-32 (IEEE) over everything before the footer
//
// The CHN0 payload is a CSR transition matrix. Version 1 stores objects
// row-wise in OBJ0 (ids, observation times, sparse pdfs as
// (count, idx..., val...) with every integer a full uint64). Version 2
// stores them columnar in OBC0: the observation set as delta-encoded
// parallel arrays — object ids, observation counts, times, support
// lengths, support state ids — in varint blocks, followed by one raw
// little-endian float64 probability column padded to an 8-aligned file
// offset. The columnar layout is both smaller (varints + deltas) and
// the unit of the zero-copy load path: LoadDatabaseMapped adopts the
// probability column and carves per-object segments out of shared
// arenas instead of allocating per observation. Writers emit version 2
// (SaveDatabase) unless asked for 1 (SaveDatabaseV1); readers accept
// both.
package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// Format constants.
var (
	magic       = [4]byte{'U', 'S', 'T', 'D'}
	tagChain    = [4]byte{'C', 'H', 'N', '0'}
	tagObjects  = [4]byte{'O', 'B', 'J', '0'}
	tagColumnar = [4]byte{'O', 'B', 'C', '0'}
)

const (
	formatVersion  = 1
	formatVersion2 = 2
	footerGuard    = 0xC5C5C5C5
)

// ErrCorrupt is wrapped by all integrity failures.
var ErrCorrupt = errors.New("store: corrupt file")

// writer tracks CRC over everything written.
type writer struct {
	w   *bufio.Writer
	crc hash.Hash32
	n   int64
	err error
}

func newWriter(w io.Writer) *writer {
	return &writer{w: bufio.NewWriter(w), crc: crc32.NewIEEE()}
}

func (w *writer) write(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
	if w.err == nil {
		w.crc.Write(p)
		w.n += int64(len(p))
	}
}

func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.write(b[:])
}

func (w *writer) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.write(b[:])
}

func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *writer) u8(v byte) { w.write([]byte{v}) }

// uvarint writes v in LEB128 — the building block of the v2 columnar
// blocks, where deltas are small and full uint64s would waste 7 bytes
// each.
func (w *writer) uvarint(v uint64) {
	var b [binary.MaxVarintLen64]byte
	w.write(b[:binary.PutUvarint(b[:], v)])
}

// svarint writes v zigzag-encoded (object-id deltas may be negative:
// insertion order is not id order).
func (w *writer) svarint(v int64) {
	var b [binary.MaxVarintLen64]byte
	w.write(b[:binary.PutVarint(b[:], v)])
}

// offset returns the number of bytes written so far — the file offset of
// the next write, used to pad the v2 probability column to 8 alignment.
func (w *writer) offset() int64 { return w.n }

// block buffers f's output and emits it as a u64-length-prefixed block —
// the v2 sub-section framing that lets readers slice without parsing and
// bound every allocation by a checked length.
func (w *writer) block(f func(*writer)) {
	if w.err != nil {
		return
	}
	var buf bytes.Buffer
	sub := newWriter(&buf)
	f(sub)
	if sub.err != nil {
		w.err = sub.err
		return
	}
	if err := sub.w.Flush(); err != nil {
		w.err = err
		return
	}
	w.u64(uint64(buf.Len()))
	w.write(buf.Bytes())
}

func (w *writer) ints(vs []int) {
	w.u64(uint64(len(vs)))
	for _, v := range vs {
		if v < 0 {
			w.err = fmt.Errorf("store: negative index %d", v)
			return
		}
		w.u64(uint64(v))
	}
}

func (w *writer) floats(vs []float64) {
	w.u64(uint64(len(vs)))
	for _, v := range vs {
		w.f64(v)
	}
}

// finish writes the footer guard and CRC and flushes.
func (w *writer) finish() error {
	if w.err != nil {
		return w.err
	}
	sum := w.crc.Sum32()
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], footerGuard)
	binary.LittleEndian.PutUint32(b[4:], sum)
	if _, err := w.w.Write(b[:]); err != nil {
		return err
	}
	return w.w.Flush()
}

// reader tracks CRC over everything read before the footer.
type reader struct {
	r   io.Reader
	crc hash.Hash32
	err error
}

func newReader(r io.Reader) *reader {
	return &reader{r: bufio.NewReader(r), crc: crc32.NewIEEE()}
}

// newRawReader wraps r without buffering, so the caller can measure
// exactly how many bytes a nested decode consumed (the v2 loader parses
// the chain section in place).
func newRawReader(r io.Reader) *reader {
	return &reader{r: r, crc: crc32.NewIEEE()}
}

func (r *reader) read(p []byte) bool {
	if r.err != nil {
		return false
	}
	_, r.err = io.ReadFull(r.r, p)
	if r.err != nil {
		return false
	}
	r.crc.Write(p)
	return true
}

func (r *reader) u32() uint32 {
	var b [4]byte
	if !r.read(b[:]) {
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) u64() uint64 {
	var b [8]byte
	if !r.read(b[:]) {
		return 0
	}
	return binary.LittleEndian.Uint64(b[:])
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

// maxSliceLen guards length prefixes against corrupt files asking for
// absurd allocations.
const maxSliceLen = 1 << 31

func (r *reader) ints() []int {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if n > maxSliceLen {
		r.err = fmt.Errorf("%w: slice length %d", ErrCorrupt, n)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		v := r.u64()
		if v > math.MaxInt64 {
			r.err = fmt.Errorf("%w: index overflow", ErrCorrupt)
			return nil
		}
		out[i] = int(v)
	}
	return out
}

func (r *reader) floats() []float64 {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if n > maxSliceLen {
		r.err = fmt.Errorf("%w: slice length %d", ErrCorrupt, n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}
