// Package store persists chains and object databases in a compact,
// checksummed binary format, plus a JSON export for interoperability.
//
// Binary layout (all integers little-endian):
//
//	magic    [4]byte  "USTD"
//	version  uint32   currently 1
//	sections          repeated until EOF-8:
//	  tag    [4]byte  "CHN0" | "OBJ0"
//	  length uint64   payload byte length
//	  payload
//	footer   uint32   0xC5C5C5C5 guard
//	crc      uint32   CRC-32 (IEEE) over everything before the footer
//
// The CHN0 payload is a CSR transition matrix; OBJ0 holds the object set
// (ids, observation times, sparse pdfs). Sparse vectors are stored as
// (count, idx..., val...).
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// Format constants.
var (
	magic      = [4]byte{'U', 'S', 'T', 'D'}
	tagChain   = [4]byte{'C', 'H', 'N', '0'}
	tagObjects = [4]byte{'O', 'B', 'J', '0'}
)

const (
	formatVersion = 1
	footerGuard   = 0xC5C5C5C5
)

// ErrCorrupt is wrapped by all integrity failures.
var ErrCorrupt = errors.New("store: corrupt file")

// writer tracks CRC over everything written.
type writer struct {
	w   *bufio.Writer
	crc hash.Hash32
	n   int64
	err error
}

func newWriter(w io.Writer) *writer {
	return &writer{w: bufio.NewWriter(w), crc: crc32.NewIEEE()}
}

func (w *writer) write(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
	if w.err == nil {
		w.crc.Write(p)
		w.n += int64(len(p))
	}
}

func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.write(b[:])
}

func (w *writer) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.write(b[:])
}

func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *writer) ints(vs []int) {
	w.u64(uint64(len(vs)))
	for _, v := range vs {
		if v < 0 {
			w.err = fmt.Errorf("store: negative index %d", v)
			return
		}
		w.u64(uint64(v))
	}
}

func (w *writer) floats(vs []float64) {
	w.u64(uint64(len(vs)))
	for _, v := range vs {
		w.f64(v)
	}
}

// finish writes the footer guard and CRC and flushes.
func (w *writer) finish() error {
	if w.err != nil {
		return w.err
	}
	sum := w.crc.Sum32()
	var b [8]byte
	binary.LittleEndian.PutUint32(b[:4], footerGuard)
	binary.LittleEndian.PutUint32(b[4:], sum)
	if _, err := w.w.Write(b[:]); err != nil {
		return err
	}
	return w.w.Flush()
}

// reader tracks CRC over everything read before the footer.
type reader struct {
	r   io.Reader
	crc hash.Hash32
	err error
}

func newReader(r io.Reader) *reader {
	return &reader{r: bufio.NewReader(r), crc: crc32.NewIEEE()}
}

func (r *reader) read(p []byte) bool {
	if r.err != nil {
		return false
	}
	_, r.err = io.ReadFull(r.r, p)
	if r.err != nil {
		return false
	}
	r.crc.Write(p)
	return true
}

func (r *reader) u32() uint32 {
	var b [4]byte
	if !r.read(b[:]) {
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) u64() uint64 {
	var b [8]byte
	if !r.read(b[:]) {
		return 0
	}
	return binary.LittleEndian.Uint64(b[:])
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

// maxSliceLen guards length prefixes against corrupt files asking for
// absurd allocations.
const maxSliceLen = 1 << 31

func (r *reader) ints() []int {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if n > maxSliceLen {
		r.err = fmt.Errorf("%w: slice length %d", ErrCorrupt, n)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		v := r.u64()
		if v > math.MaxInt64 {
			r.err = fmt.Errorf("%w: index overflow", ErrCorrupt)
			return nil
		}
		out[i] = int(v)
	}
	return out
}

func (r *reader) floats() []float64 {
	n := r.u64()
	if r.err != nil {
		return nil
	}
	if n > maxSliceLen {
		r.err = fmt.Errorf("%w: slice length %d", ErrCorrupt, n)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}
