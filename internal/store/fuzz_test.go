package store

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeStoreV2 hammers the mapped decoder with arbitrary bytes,
// seeded with valid v1 and v2 images and systematic truncations. The
// contract: never panic, never allocate unboundedly; failures are
// ErrCorrupt (or a clean unsupported-version error), and any input that
// decodes successfully must re-encode successfully.
func FuzzDecodeStoreV2(f *testing.F) {
	db := testDB(f)
	var v2, v1 bytes.Buffer
	if err := SaveDatabase(&v2, db); err != nil {
		f.Fatal(err)
	}
	if err := SaveDatabaseV1(&v1, db); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(v1.Bytes())
	for _, cut := range []int{0, 4, 12, 16, len(v2.Bytes()) / 2, len(v2.Bytes()) - 9, len(v2.Bytes()) - 1} {
		if cut >= 0 && cut <= v2.Len() {
			f.Add(v2.Bytes()[:cut])
		}
	}
	// A CRC-valid file with a corrupt interior exercises the parser
	// (not just the checksum gate).
	inner := append([]byte(nil), v2.Bytes()...)
	if len(inner) > 40 {
		inner[30] ^= 0xff
		fixupCRC(inner)
		f.Add(inner)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := LoadDatabaseMapped(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !bytes.Contains([]byte(err.Error()), []byte("unsupported version")) {
				t.Fatalf("decode error outside the contract: %v", err)
			}
			return
		}
		var out bytes.Buffer
		if err := SaveDatabase(&out, loaded); err != nil {
			t.Fatalf("decoded database failed to re-encode: %v", err)
		}
	})
}
