package store

import (
	"encoding/json"
	"fmt"
	"io"

	"ust/internal/core"
	"ust/internal/markov"
	"ust/internal/sparse"
)

// JSON interchange types. The JSON form is verbose but diffable and
// readable by other tooling; the binary form is the storage format.

// ChainJSON is the JSON shape of a transition matrix.
type ChainJSON struct {
	NumStates   int              `json:"num_states"`
	Transitions []TransitionJSON `json:"transitions"`
}

// TransitionJSON is one non-zero transition probability.
type TransitionJSON struct {
	From int     `json:"from"`
	To   int     `json:"to"`
	P    float64 `json:"p"`
}

// ObservationJSON is one observation of an object.
type ObservationJSON struct {
	Time   int       `json:"time"`
	States []int     `json:"states"`
	Probs  []float64 `json:"probs"`
}

// ObjectJSON is one uncertain object.
type ObjectJSON struct {
	ID           int               `json:"id"`
	Chain        *ChainJSON        `json:"chain,omitempty"`
	Observations []ObservationJSON `json:"observations"`
}

// DatabaseJSON is the top-level JSON document.
type DatabaseJSON struct {
	DefaultChain ChainJSON    `json:"default_chain"`
	Objects      []ObjectJSON `json:"objects"`
}

func chainToJSON(c *markov.Chain) ChainJSON {
	out := ChainJSON{NumStates: c.NumStates()}
	m := c.Matrix()
	for i := 0; i < m.Rows(); i++ {
		m.Row(i, func(j int, p float64) {
			out.Transitions = append(out.Transitions, TransitionJSON{From: i, To: j, P: p})
		})
	}
	return out
}

func chainFromJSON(cj ChainJSON) (*markov.Chain, error) {
	if cj.NumStates < 1 {
		return nil, fmt.Errorf("store: chain with %d states", cj.NumStates)
	}
	b := sparse.NewBuilder(cj.NumStates, cj.NumStates)
	for _, tr := range cj.Transitions {
		if tr.From < 0 || tr.From >= cj.NumStates || tr.To < 0 || tr.To >= cj.NumStates {
			return nil, fmt.Errorf("store: transition (%d,%d) outside %d states", tr.From, tr.To, cj.NumStates)
		}
		b.Add(tr.From, tr.To, tr.P)
	}
	return markov.NewChain(b.Build())
}

// ExportJSON writes the database as an indented JSON document.
func ExportJSON(w io.Writer, db *core.Database) error {
	doc := DatabaseJSON{DefaultChain: chainToJSON(db.DefaultChain())}
	for _, o := range db.Objects() {
		oj := ObjectJSON{ID: o.ID}
		if o.Chain != nil {
			cj := chainToJSON(o.Chain)
			oj.Chain = &cj
		}
		for _, ob := range o.Observations {
			obJSON := ObservationJSON{Time: ob.Time}
			for _, s := range ob.PDF.Support() {
				obJSON.States = append(obJSON.States, s)
				obJSON.Probs = append(obJSON.Probs, ob.PDF.P(s))
			}
			oj.Observations = append(oj.Observations, obJSON)
		}
		doc.Objects = append(doc.Objects, oj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ImportJSON reads a document written by ExportJSON.
func ImportJSON(r io.Reader) (*core.Database, error) {
	var doc DatabaseJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("store: decoding JSON: %w", err)
	}
	chain, err := chainFromJSON(doc.DefaultChain)
	if err != nil {
		return nil, err
	}
	db := core.NewDatabase(chain)
	for _, oj := range doc.Objects {
		var own *markov.Chain
		if oj.Chain != nil {
			own, err = chainFromJSON(*oj.Chain)
			if err != nil {
				return nil, fmt.Errorf("store: object %d chain: %w", oj.ID, err)
			}
		}
		var obs []core.Observation
		n := chain.NumStates()
		if own != nil {
			n = own.NumStates()
		}
		for _, obJSON := range oj.Observations {
			pdf, perr := markov.WeightedOver(n, obJSON.States, obJSON.Probs)
			if perr != nil {
				return nil, fmt.Errorf("store: object %d observation at t=%d: %w", oj.ID, obJSON.Time, perr)
			}
			obs = append(obs, core.Observation{Time: obJSON.Time, PDF: pdf})
		}
		o, oerr := core.NewObject(oj.ID, own, obs...)
		if oerr != nil {
			return nil, fmt.Errorf("store: object %d: %w", oj.ID, oerr)
		}
		if err := db.Add(o); err != nil {
			return nil, err
		}
	}
	return db, nil
}
