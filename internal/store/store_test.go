package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ust/internal/core"
	"ust/internal/gen"
	"ust/internal/markov"
)

func testChain(t testing.TB) *markov.Chain {
	t.Helper()
	c, err := markov.FromDense([][]float64{
		{0, 0, 1},
		{0.6, 0, 0.4},
		{0, 0.8, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testDB(t testing.TB) *core.Database {
	t.Helper()
	db := core.NewDatabase(testChain(t))
	db.MustAdd(core.MustObject(1, nil, core.Observation{Time: 0, PDF: markov.PointDistribution(3, 1)}))
	db.MustAdd(core.MustObject(2, nil,
		core.Observation{Time: 0, PDF: markov.UniformOver(3, []int{0, 2})},
		core.Observation{Time: 3, PDF: markov.PointDistribution(3, 1)},
	))
	own, err := markov.FromDense([][]float64{
		{0.5, 0.5, 0},
		{0, 0.5, 0.5},
		{0.5, 0, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	db.MustAdd(core.MustObject(7, own, core.Observation{Time: 1, PDF: markov.PointDistribution(3, 2)}))
	return db
}

func TestChainRoundTrip(t *testing.T) {
	c := testChain(t)
	var buf bytes.Buffer
	if err := SaveChain(&buf, c); err != nil {
		t.Fatalf("SaveChain: %v", err)
	}
	got, err := LoadChain(&buf)
	if err != nil {
		t.Fatalf("LoadChain: %v", err)
	}
	if !got.Matrix().Equal(c.Matrix(), 0) {
		t.Error("chain round trip mismatch")
	}
}

func TestDatabaseRoundTrip(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := SaveDatabase(&buf, db); err != nil {
		t.Fatalf("SaveDatabase: %v", err)
	}
	got, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatalf("LoadDatabase: %v", err)
	}
	assertDatabasesEqual(t, db, got)
}

func assertDatabasesEqual(t *testing.T, want, got *core.Database) {
	t.Helper()
	if !got.DefaultChain().Matrix().Equal(want.DefaultChain().Matrix(), 1e-12) {
		t.Error("default chain mismatch")
	}
	if got.Len() != want.Len() {
		t.Fatalf("object count %d, want %d", got.Len(), want.Len())
	}
	for _, wo := range want.Objects() {
		go_ := got.Get(wo.ID)
		if go_ == nil {
			t.Fatalf("object %d missing", wo.ID)
		}
		if (wo.Chain != nil) != (go_.Chain != nil) {
			t.Errorf("object %d chain presence mismatch", wo.ID)
		}
		if wo.Chain != nil && !go_.Chain.Matrix().Equal(wo.Chain.Matrix(), 1e-12) {
			t.Errorf("object %d own chain mismatch", wo.ID)
		}
		if len(go_.Observations) != len(wo.Observations) {
			t.Fatalf("object %d has %d observations, want %d", wo.ID, len(go_.Observations), len(wo.Observations))
		}
		for k, wob := range wo.Observations {
			gob := go_.Observations[k]
			if gob.Time != wob.Time {
				t.Errorf("object %d obs %d time %d, want %d", wo.ID, k, gob.Time, wob.Time)
			}
			// Loading normalizes pdfs; compare normalized.
			wpdf := wob.PDF.Clone()
			wpdf.Vec().Normalize()
			if !gob.PDF.Vec().Equal(wpdf.Vec(), 1e-12) {
				t.Errorf("object %d obs %d pdf mismatch", wo.ID, k)
			}
		}
	}
}

func TestRoundTripPreservesQueryResults(t *testing.T) {
	// End-to-end: persisted database answers queries identically.
	db := testDB(t)
	var buf bytes.Buffer
	if err := SaveDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := core.NewQuery([]int{0, 1}, []int{2, 3})
	before, err := core.NewEngine(db, core.Options{}).Exists(q)
	if err != nil {
		t.Fatal(err)
	}
	after, err := core.NewEngine(loaded, core.Options{}).Exists(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i].ObjectID != after[i].ObjectID || math.Abs(before[i].Prob-after[i].Prob) > 1e-12 {
			t.Errorf("result %d changed across persistence: %+v vs %+v", i, before[i], after[i])
		}
	}
}

func TestGeneratedDatasetRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		p := gen.Params{NumObjects: 10, NumStates: 60, ObjectSpread: 3, StateSpread: 4, MaxStep: 10, Seed: seed}
		ds := gen.MustGenerate(p)
		db := core.NewDatabase(ds.Chain)
		for i, o := range ds.Objects {
			if db.AddSimple(i, o) != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if SaveDatabase(&buf, db) != nil {
			return false
		}
		got, err := LoadDatabase(&buf)
		if err != nil {
			return false
		}
		return got.DefaultChain().Matrix().Equal(db.DefaultChain().Matrix(), 1e-12) && got.Len() == db.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCorruptionDetection(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := SaveDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	// Flip one byte at a sample of offsets; every load must fail, and
	// none may panic.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		pos := rng.Intn(len(pristine))
		corrupted := append([]byte(nil), pristine...)
		corrupted[pos] ^= 0x41
		_, err := LoadDatabase(bytes.NewReader(corrupted))
		if err == nil {
			t.Fatalf("corruption at byte %d went undetected", pos)
		}
	}
}

func TestTruncationDetection(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := SaveDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 1, 4, 8, len(full) / 2, len(full) - 1} {
		if _, err := LoadDatabase(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d bytes went undetected", cut)
		}
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	_, err := LoadDatabase(bytes.NewReader([]byte("NOPE00000000")))
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad magic: got %v, want ErrCorrupt", err)
	}

	db := testDB(t)
	var buf bytes.Buffer
	if err := SaveDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	bad := buf.Bytes()
	bad[4] = 99 // version field
	_, err = LoadDatabase(bytes.NewReader(bad))
	if err == nil {
		t.Error("future version accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	db := testDB(t)
	var buf bytes.Buffer
	if err := ExportJSON(&buf, db); err != nil {
		t.Fatalf("ExportJSON: %v", err)
	}
	got, err := ImportJSON(&buf)
	if err != nil {
		t.Fatalf("ImportJSON: %v", err)
	}
	assertDatabasesEqual(t, db, got)
}

func TestJSONRejectsGarbage(t *testing.T) {
	if _, err := ImportJSON(bytes.NewReader([]byte("{"))); err == nil {
		t.Error("truncated JSON accepted")
	}
	if _, err := ImportJSON(bytes.NewReader([]byte(`{"unknown_field": 1}`))); err == nil {
		t.Error("unknown fields accepted")
	}
	// Valid JSON, invalid chain (non-stochastic).
	bad := `{"default_chain":{"num_states":2,"transitions":[{"from":0,"to":1,"p":0.5}]},"objects":[]}`
	if _, err := ImportJSON(bytes.NewReader([]byte(bad))); err == nil {
		t.Error("non-stochastic chain accepted")
	}
}

func TestSaveChainRejectsNothing(t *testing.T) {
	// Even a trivial 1-state chain round-trips.
	c, err := markov.FromDense([][]float64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveChain(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := LoadChain(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumStates() != 1 {
		t.Error("1-state chain round trip failed")
	}
}

func TestLoadChainRejectsDatabaseFile(t *testing.T) {
	// A database file has two sections; LoadChain must refuse the
	// unexpected OBJ0 section rather than silently ignore it.
	db := testDB(t)
	var buf bytes.Buffer
	if err := SaveDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadChain(&buf); err == nil {
		t.Error("LoadChain accepted a database file")
	}
}

func TestLoadDatabaseOnChainOnlyFile(t *testing.T) {
	// A chain-only file loads as an empty database? No: LoadDatabase
	// requires the chain section and tolerates missing objects.
	var buf bytes.Buffer
	if err := SaveChain(&buf, testChain(t)); err != nil {
		t.Fatal(err)
	}
	db, err := LoadDatabase(&buf)
	if err != nil {
		t.Fatalf("LoadDatabase on chain-only file: %v", err)
	}
	if db.Len() != 0 {
		t.Errorf("chain-only file produced %d objects", db.Len())
	}
}

func TestLoadChainEmptyInput(t *testing.T) {
	if _, err := LoadChain(bytes.NewReader(nil)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("empty input: %v, want ErrCorrupt", err)
	}
}

func TestNonStochasticChainRejectedOnLoad(t *testing.T) {
	// Hand-corrupt a stored probability then fix the CRC: the loader's
	// semantic validation must still reject the chain.
	c := testChain(t)
	var buf bytes.Buffer
	if err := SaveChain(&buf, c); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Find the float64 bits of 0.6 and overwrite with 0.9.
	pattern := make([]byte, 8)
	binary.LittleEndian.PutUint64(pattern, math.Float64bits(0.6))
	idx := bytes.Index(raw, pattern)
	if idx < 0 {
		t.Fatal("0.6 not found in encoding")
	}
	binary.LittleEndian.PutUint64(raw[idx:], math.Float64bits(0.9))
	// Recompute the CRC over the body.
	body := raw[:len(raw)-8]
	binary.LittleEndian.PutUint32(raw[len(raw)-4:], crc32.ChecksumIEEE(body))
	if _, err := LoadChain(bytes.NewReader(raw)); err == nil {
		t.Error("non-stochastic chain accepted after CRC fix-up")
	}
}
