package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"ust/internal/core"
	"ust/internal/markov"
	"ust/internal/sparse"
)

// The version-2 columnar object section (tag OBC0). Layout:
//
//	u64 objectCount
//	7 blocks, each u64 byte length + payload:
//	  ids      objectCount zigzag varints: delta-encoded object ids
//	  counts   objectCount uvarints: observations per object (>=1)
//	  times    per object: first time absolute, then deltas (uvarints)
//	  lens     per observation: support size (uvarint, >=1)
//	  states   per observation: first state id absolute, then deltas
//	  chains   u64 count, then per own-chain object:
//	           uvarint object index, u64 CSR byte length, CSR payload
//	  probs    u8 padLen, padLen zero bytes, then one raw little-endian
//	           float64 per support entry. padLen is chosen at write time
//	           so the float column starts at a file offset that is a
//	           multiple of 8 — the precondition for the zero-copy adopt
//	           in LoadDatabaseMapped.
//
// Every integer block is delta-encoded against a sorted or ascending
// base (observation times and support ids are strictly ascending, so
// deltas are positive and varints stay short); object ids use zigzag
// because insertion order need not be id order.

// hostLittleEndian reports whether float64 bit patterns in memory match
// the file's little-endian layout, the second precondition for adopting
// the probability column without decoding.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// LoadDatabaseMapped decodes a complete in-memory store image (any
// version). For version-2 images the probability column is adopted
// zero-copy when its file offset is 8-aligned in data: the returned
// database's observation pdfs and columnar segments alias data, so the
// caller must not modify the buffer for the lifetime of the database.
// Misaligned or big-endian loads transparently fall back to copying.
func LoadDatabaseMapped(data []byte) (*core.Database, error) {
	version, sections, body, err := envelope(data)
	if err != nil {
		return nil, err
	}
	switch version {
	case formatVersion:
		return loadV1(newReader(bytes.NewReader(body[12:])), sections)
	case formatVersion2:
		return loadV2(body, sections)
	default:
		return nil, fmt.Errorf("store: unsupported version %d (supported: %d, %d)",
			version, formatVersion, formatVersion2)
	}
}

// writeColumnarSection emits the OBC0 section, preferring the database's
// maintained column plane (bit-faithful to the boxed pdfs) and falling
// back to extraction for objects without a current segment.
func writeColumnarSection(out *writer, db *core.Database) {
	out.write(tagColumnar[:])
	objs := db.Objects()
	out.u64(uint64(len(objs)))

	segs := make([]core.ObsSeg, len(objs))
	for i, o := range objs {
		if seg, ok := db.Columns().Segment(o.ID); ok && seg.Len() == len(o.Observations) {
			segs[i] = seg
			continue
		}
		segs[i] = extractSeg(o)
	}

	// ids
	out.block(func(b *writer) {
		prev := int64(0)
		for _, o := range objs {
			b.svarint(int64(o.ID) - prev)
			prev = int64(o.ID)
		}
	})
	// counts
	out.block(func(b *writer) {
		for _, o := range objs {
			b.uvarint(uint64(len(o.Observations)))
		}
	})
	// times
	out.block(func(b *writer) {
		for _, o := range objs {
			prev := int64(0)
			for k, ob := range o.Observations {
				if ob.Time > math.MaxInt32 {
					b.err = fmt.Errorf("store: object %d observation time %d overflows the v2 format", o.ID, ob.Time)
					return
				}
				if k == 0 {
					b.uvarint(uint64(ob.Time))
				} else {
					b.uvarint(uint64(int64(ob.Time) - prev))
				}
				prev = int64(ob.Time)
			}
		}
	})
	// lens
	out.block(func(b *writer) {
		for _, seg := range segs {
			for k := 0; k < seg.Len(); k++ {
				b.uvarint(uint64(seg.Off[k+1] - seg.Off[k]))
			}
		}
	})
	// states
	out.block(func(b *writer) {
		for _, seg := range segs {
			for k := 0; k < seg.Len(); k++ {
				ids, _ := seg.Supp(k)
				prev := int64(0)
				for j, s := range ids {
					if j == 0 {
						b.uvarint(uint64(s))
					} else {
						b.uvarint(uint64(int64(s) - prev))
					}
					prev = int64(s)
				}
			}
		}
	})
	// chains
	out.block(func(b *writer) {
		count := 0
		for _, o := range objs {
			if o.Chain != nil {
				count++
			}
		}
		b.u64(uint64(count))
		for i, o := range objs {
			if o.Chain == nil {
				continue
			}
			payload, err := csrBytes(o.Chain.Matrix())
			if err != nil {
				b.err = err
				return
			}
			b.uvarint(uint64(i))
			b.u64(uint64(len(payload)))
			b.write(payload)
		}
	})
	// probs: padded so the float column lands on an 8-aligned file
	// offset. The pad is computed against the writer's running offset —
	// everything before this block has variable (varint) length.
	total := 0
	for _, seg := range segs {
		total += len(seg.Probs)
	}
	padStart := out.offset() + 8 + 1 // length prefix + padLen byte
	padLen := int((8 - padStart%8) % 8)
	out.u64(uint64(1 + padLen + 8*total))
	out.u8(byte(padLen))
	if padLen > 0 {
		out.write(make([]byte, padLen))
	}
	var scratch [8]byte
	for _, seg := range segs {
		for _, p := range seg.Probs {
			binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(p))
			out.write(scratch[:])
		}
	}
}

// extractSeg derives a column segment from an object's boxed pdfs — the
// writer's fallback when the database has no current plane entry.
func extractSeg(o *core.Object) core.ObsSeg {
	seg := core.ObsSeg{
		Times: make([]int32, len(o.Observations)),
		Off:   make([]int32, len(o.Observations)+1),
	}
	for k, ob := range o.Observations {
		seg.Times[k] = int32(ob.Time)
		for _, s := range ob.PDF.Support() {
			seg.IDs = append(seg.IDs, int32(s))
			seg.Probs = append(seg.Probs, ob.PDF.P(s))
		}
		seg.Off[k+1] = int32(len(seg.IDs))
	}
	return seg
}

// csrBytes encodes a CSR matrix standalone (for the per-object chain
// entries, which need a byte-length prefix).
func csrBytes(m *sparse.CSR) ([]byte, error) {
	var buf bytes.Buffer
	sub := newWriter(&buf)
	writeCSR(sub, m)
	if sub.err != nil {
		return nil, sub.err
	}
	if err := sub.w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// byteCursor walks one decoded block.
type byteCursor struct {
	b   []byte
	pos int
}

func (c *byteCursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint", ErrCorrupt)
	}
	c.pos += n
	return v, nil
}

func (c *byteCursor) svarint() (int64, error) {
	v, n := binary.Varint(c.b[c.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint", ErrCorrupt)
	}
	c.pos += n
	return v, nil
}

func (c *byteCursor) u64() (uint64, error) {
	if len(c.b)-c.pos < 8 {
		return 0, fmt.Errorf("%w: truncated block", ErrCorrupt)
	}
	v := binary.LittleEndian.Uint64(c.b[c.pos:])
	c.pos += 8
	return v, nil
}

func (c *byteCursor) take(n int) ([]byte, error) {
	if n < 0 || len(c.b)-c.pos < n {
		return nil, fmt.Errorf("%w: truncated block", ErrCorrupt)
	}
	out := c.b[c.pos : c.pos+n]
	c.pos += n
	return out, nil
}

func (c *byteCursor) mustEnd() error {
	if c.pos != len(c.b) {
		return fmt.Errorf("%w: %d trailing bytes in block", ErrCorrupt, len(c.b)-c.pos)
	}
	return nil
}

// v2Decoder walks the body slice with file-absolute offsets (needed for
// the probability column's alignment contract).
type v2Decoder struct {
	body []byte
	off  int
}

func (d *v2Decoder) take(n int) ([]byte, error) {
	if n < 0 || len(d.body)-d.off < n {
		return nil, fmt.Errorf("%w: truncated section", ErrCorrupt)
	}
	out := d.body[d.off : d.off+n]
	d.off += n
	return out, nil
}

func (d *v2Decoder) u64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// block reads a u64 length prefix and returns the payload slice plus the
// file offset of its first byte.
func (d *v2Decoder) block() ([]byte, int, error) {
	n, err := d.u64()
	if err != nil {
		return nil, 0, err
	}
	if n > uint64(len(d.body)-d.off) {
		return nil, 0, fmt.Errorf("%w: block length %d exceeds file", ErrCorrupt, n)
	}
	start := d.off
	payload, err := d.take(int(n))
	return payload, start, err
}

// columnarBlocks is the skimmed (not yet decoded) OBC0 section.
type columnarBlocks struct {
	count                                 uint64
	ids, counts, times, lens, states, chs []byte
	probs                                 []byte
	probsOff                              int
}

// skimColumnar slices the OBC0 blocks out of the body without
// interpreting them — decoding waits until the chain section is known.
func skimColumnar(d *v2Decoder) (*columnarBlocks, error) {
	var cb columnarBlocks
	var err error
	if cb.count, err = d.u64(); err != nil {
		return nil, err
	}
	if cb.count > maxSliceLen {
		return nil, fmt.Errorf("%w: object count %d", ErrCorrupt, cb.count)
	}
	for _, dst := range []*[]byte{&cb.ids, &cb.counts, &cb.times, &cb.lens, &cb.states, &cb.chs} {
		if *dst, _, err = d.block(); err != nil {
			return nil, err
		}
	}
	if cb.probs, cb.probsOff, err = d.block(); err != nil {
		return nil, err
	}
	return &cb, nil
}

// loadV2 decodes a version-2 body.
func loadV2(body []byte, sections uint32) (*core.Database, error) {
	d := &v2Decoder{body: body, off: 12}
	var chain *markov.Chain
	var cb *columnarBlocks
	for i := uint32(0); i < sections; i++ {
		tag, err := d.take(4)
		if err != nil {
			return nil, err
		}
		switch *(*[4]byte)(tag) {
		case tagChain:
			br := bytes.NewReader(body[d.off:])
			before := br.Len()
			c, err := readChain(newRawReader(br))
			if err != nil {
				return nil, err
			}
			chain = c
			d.off += before - br.Len()
		case tagColumnar:
			if cb, err = skimColumnar(d); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: unexpected section %q", ErrCorrupt, tag)
		}
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("%w: trailing bytes after last section", ErrCorrupt)
	}
	if chain == nil {
		return nil, fmt.Errorf("%w: no chain section", ErrCorrupt)
	}
	if cb == nil {
		return nil, fmt.Errorf("%w: no object section", ErrCorrupt)
	}
	return decodeColumnar(cb, chain)
}

// decodeColumnar materializes the database from skimmed blocks: shared
// arenas for every per-observation slice, the probability column adopted
// zero-copy when aligned, and the column plane pre-seeded so Database.Add
// claims each segment instead of re-deriving it.
func decodeColumnar(cb *columnarBlocks, chain *markov.Chain) (*core.Database, error) {
	n := int(cb.count)

	// Object ids.
	ids := make([]int, n)
	cur := byteCursor{b: cb.ids}
	prev := int64(0)
	for i := range ids {
		d, err := cur.svarint()
		if err != nil {
			return nil, err
		}
		prev += d
		ids[i] = int(prev)
	}
	if err := cur.mustEnd(); err != nil {
		return nil, err
	}

	// Observation counts.
	counts := make([]int, n)
	totalObs := 0
	cur = byteCursor{b: cb.counts}
	for i := range counts {
		v, err := cur.uvarint()
		if err != nil {
			return nil, err
		}
		if v == 0 || v > maxSliceLen {
			return nil, fmt.Errorf("%w: object %d has %d observations", ErrCorrupt, ids[i], v)
		}
		counts[i] = int(v)
		totalObs += int(v)
	}
	if err := cur.mustEnd(); err != nil {
		return nil, err
	}
	if totalObs > maxSliceLen {
		return nil, fmt.Errorf("%w: %d observations", ErrCorrupt, totalObs)
	}

	// Own chains (decoded before state ids: they set the per-object
	// state-space bound).
	ownChains := map[int]*markov.Chain{}
	cur = byteCursor{b: cb.chs}
	nChains, err := cur.u64()
	if err != nil {
		return nil, err
	}
	if nChains > cb.count {
		return nil, fmt.Errorf("%w: %d own chains for %d objects", ErrCorrupt, nChains, cb.count)
	}
	for c := uint64(0); c < nChains; c++ {
		idx, err := cur.uvarint()
		if err != nil {
			return nil, err
		}
		if idx >= cb.count {
			return nil, fmt.Errorf("%w: chain for object index %d of %d", ErrCorrupt, idx, cb.count)
		}
		clen, err := cur.u64()
		if err != nil {
			return nil, err
		}
		payload, err := cur.take(int(clen))
		if err != nil {
			return nil, err
		}
		br := bytes.NewReader(payload)
		ch, err := readChain(newRawReader(br))
		if err != nil {
			return nil, err
		}
		if br.Len() != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes after chain", ErrCorrupt, br.Len())
		}
		ownChains[int(idx)] = ch
	}
	if err := cur.mustEnd(); err != nil {
		return nil, err
	}

	// Observation times, delta-decoded into one arena.
	timesArena := make([]int32, totalObs)
	cur = byteCursor{b: cb.times}
	pos := 0
	for i := 0; i < n; i++ {
		t := uint64(0)
		for k := 0; k < counts[i]; k++ {
			d, err := cur.uvarint()
			if err != nil {
				return nil, err
			}
			if k == 0 {
				t = d
			} else {
				t += d
			}
			if t > math.MaxInt32 {
				return nil, fmt.Errorf("%w: observation time %d", ErrCorrupt, t)
			}
			timesArena[pos] = int32(t)
			pos++
		}
	}
	if err := cur.mustEnd(); err != nil {
		return nil, err
	}

	// Support lengths and per-object offset arenas.
	lens := make([]int32, totalObs)
	offArena := make([]int32, totalObs+n)
	totalSupp := 0
	cur = byteCursor{b: cb.lens}
	for i := range lens {
		v, err := cur.uvarint()
		if err != nil {
			return nil, err
		}
		if v == 0 || v > maxSliceLen {
			return nil, fmt.Errorf("%w: observation support %d", ErrCorrupt, v)
		}
		lens[i] = int32(v)
		totalSupp += int(v)
	}
	if err := cur.mustEnd(); err != nil {
		return nil, err
	}
	if totalSupp > maxSliceLen {
		return nil, fmt.Errorf("%w: %d support entries", ErrCorrupt, totalSupp)
	}

	// Support state ids, delta-decoded and range-checked against each
	// object's effective state space.
	idArena := make([]int32, totalSupp)
	cur = byteCursor{b: cb.states}
	pos = 0
	obsIdx := 0
	for i := 0; i < n; i++ {
		states := chain.NumStates()
		if ch, ok := ownChains[i]; ok {
			states = ch.NumStates()
		}
		for k := 0; k < counts[i]; k++ {
			s := uint64(0)
			for j := int32(0); j < lens[obsIdx]; j++ {
				d, err := cur.uvarint()
				if err != nil {
					return nil, err
				}
				if j == 0 {
					s = d
				} else {
					if d == 0 {
						return nil, fmt.Errorf("%w: duplicate support state", ErrCorrupt)
					}
					s += d
				}
				if s >= uint64(states) {
					return nil, fmt.Errorf("%w: state %d outside %d", ErrCorrupt, s, states)
				}
				idArena[pos] = int32(s)
				pos++
			}
			obsIdx++
		}
	}
	if err := cur.mustEnd(); err != nil {
		return nil, err
	}

	// The probability column: pad, then raw little-endian float64s.
	// Adopt the file bytes zero-copy when the column is 8-aligned in
	// memory and the host is little-endian; decode-copy otherwise.
	if len(cb.probs) < 1 {
		return nil, fmt.Errorf("%w: empty probability block", ErrCorrupt)
	}
	padLen := int(cb.probs[0])
	if len(cb.probs) != 1+padLen+8*totalSupp {
		return nil, fmt.Errorf("%w: probability block %d bytes, want %d",
			ErrCorrupt, len(cb.probs), 1+padLen+8*totalSupp)
	}
	raw := cb.probs[1+padLen:]
	var probs []float64
	if totalSupp == 0 {
		probs = nil
	} else if hostLittleEndian && uintptr(unsafe.Pointer(&raw[0]))%8 == 0 {
		probs = unsafe.Slice((*float64)(unsafe.Pointer(&raw[0])), totalSupp)
	} else {
		probs = make([]float64, totalSupp)
		for i := range probs {
			probs[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
	}
	for _, p := range probs {
		if !(p > 0) || math.IsInf(p, 0) {
			return nil, fmt.Errorf("%w: non-positive observation probability %g", ErrCorrupt, p)
		}
	}

	// Materialize. One arena per slice kind: per-observation work is a
	// scatter into the shared dense arena plus two small struct
	// allocations (Vec + Distribution) — never a fresh dense vector.
	denseTotal := 0
	for i := 0; i < n; i++ {
		states := chain.NumStates()
		if ch, ok := ownChains[i]; ok {
			states = ch.NumStates()
		}
		denseTotal += counts[i] * states
		if denseTotal > maxSliceLen {
			return nil, fmt.Errorf("%w: dense backing overflow", ErrCorrupt)
		}
	}
	denseArena := make([]float64, denseTotal)
	suppArena := make([]int, totalSupp)
	obsArena := make([]core.Observation, totalObs)

	cols := core.NewObsColumns()
	type objRec struct {
		id    int
		chain *markov.Chain
		obs   []core.Observation
	}
	recs := make([]objRec, n)
	obsIdx, suppIdx, denseIdx := 0, 0, 0
	for i := 0; i < n; i++ {
		states := chain.NumStates()
		ownChain := ownChains[i]
		if ownChain != nil {
			states = ownChain.NumStates()
		}
		segStart := suppIdx
		obsStart := obsIdx
		off := offArena[:counts[i]+1]
		offArena = offArena[counts[i]+1:]
		for k := 0; k < counts[i]; k++ {
			l := int(lens[obsIdx])
			supp := suppArena[suppIdx : suppIdx+l]
			dense := denseArena[denseIdx : denseIdx+states]
			for j := 0; j < l; j++ {
				s := int(idArena[suppIdx+j])
				supp[j] = s
				dense[s] = probs[suppIdx+j]
			}
			obsArena[obsIdx] = core.Observation{
				Time: int(timesArena[obsIdx]),
				PDF:  markov.FromVec(sparse.AdoptSparse(dense, supp)),
			}
			off[k+1] = off[k] + int32(l)
			suppIdx += l
			denseIdx += states
			obsIdx++
		}
		cols.AppendSeg(ids[i], core.ObsSeg{
			Times: timesArena[obsStart:obsIdx],
			Off:   off,
			IDs:   idArena[segStart:suppIdx],
			Probs: probs[segStart:suppIdx],
		})
		recs[i] = objRec{id: ids[i], chain: ownChain, obs: obsArena[obsStart:obsIdx]}
	}

	db := core.NewDatabaseWithColumns(chain, cols)
	for _, rec := range recs {
		o, err := core.NewObjectSorted(rec.id, rec.chain, rec.obs)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if err := db.Add(o); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	return db, nil
}
