package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"
	"unsafe"

	"ust/internal/core"
	"ust/internal/gen"
	"ust/internal/markov"
)

// fixupCRC recomputes a test-mutated file's footer CRC so the mutation
// reaches the parser instead of the checksum gate.
func fixupCRC(data []byte) {
	binary.LittleEndian.PutUint32(data[len(data)-4:], crc32.ChecksumIEEE(data[:len(data)-8]))
}

// genDB builds a database from a synthetic dataset, upgrading every
// third object to multiple observations so the columnar blocks carry
// real variety.
func genDB(t testing.TB, p gen.Params) *core.Database {
	t.Helper()
	ds := gen.MustGenerate(p)
	db := core.NewDatabase(ds.Chain)
	for i, d := range ds.Objects {
		if err := db.AddSimple(i, d); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < len(ds.Objects); i += 3 {
		// The added sighting must be consistent with the motion model:
		// observe a couple of states the chain can actually reach.
		dt := 2 + i%3
		reachable := ds.Chain.Evolve(ds.Objects[i].Vec(), dt).Support()
		if len(reachable) > 2 {
			reachable = reachable[:2]
		}
		upd, err := db.Get(i).WithObservation(core.Observation{
			Time: dt,
			PDF:  markov.UniformOver(p.NumStates, reachable),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.ReplaceObject(upd); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// saveV2 is a test shorthand.
func saveV2(t testing.TB, db *core.Database) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveDatabase(&buf, db); err != nil {
		t.Fatalf("SaveDatabase: %v", err)
	}
	return buf.Bytes()
}

// TestV2RoundTripByteIdentical pins the fidelity contract: save → load →
// save reproduces the file byte for byte. The v2 path stores raw pdf
// values (no renormalization on load), so a stable fixed point is the
// expected behavior, not a lucky one.
func TestV2RoundTripByteIdentical(t *testing.T) {
	db := testDB(t)
	first := saveV2(t, db)
	loaded, err := LoadDatabase(bytes.NewReader(first))
	if err != nil {
		t.Fatalf("LoadDatabase: %v", err)
	}
	second := saveV2(t, loaded)
	if !bytes.Equal(first, second) {
		t.Fatalf("v2 round trip not byte-identical: %d vs %d bytes", len(first), len(second))
	}

	// Third generation through the mapped path for good measure.
	mapped, err := LoadDatabaseMapped(second)
	if err != nil {
		t.Fatalf("LoadDatabaseMapped: %v", err)
	}
	third := saveV2(t, mapped)
	if !bytes.Equal(first, third) {
		t.Fatal("mapped load broke the round-trip fixed point")
	}
}

// TestV1CrossReadByteIdentical pins backward compatibility: a v1 file
// loads through the new reader, and re-saving it as v1 reproduces the
// original bytes exactly.
func TestV1CrossReadByteIdentical(t *testing.T) {
	db := testDB(t)
	var v1 bytes.Buffer
	if err := SaveDatabaseV1(&v1, db); err != nil {
		t.Fatalf("SaveDatabaseV1: %v", err)
	}
	loaded, err := LoadDatabase(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatalf("LoadDatabase(v1): %v", err)
	}
	var again bytes.Buffer
	if err := SaveDatabaseV1(&again, loaded); err != nil {
		t.Fatalf("re-save v1: %v", err)
	}
	if !bytes.Equal(v1.Bytes(), again.Bytes()) {
		t.Fatal("v1 load → v1 save not byte-identical")
	}

	// And the mapped entry point accepts v1 images too.
	if _, err := LoadDatabaseMapped(v1.Bytes()); err != nil {
		t.Fatalf("LoadDatabaseMapped(v1): %v", err)
	}
}

// TestV2MatchesV1Semantics loads the same database through both formats
// and compares every observation pdf value and chain entry.
func TestV2MatchesV1Semantics(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		p := gen.Params{NumObjects: 8, NumStates: 40, ObjectSpread: 3, StateSpread: 4, MaxStep: 10, Seed: seed}
		wantDB := genDB(t, p)
		v2 := saveV2(t, wantDB)
		got, err := LoadDatabaseMapped(v2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got.Len() != wantDB.Len() {
			t.Fatalf("seed %d: %d objects, want %d", seed, got.Len(), wantDB.Len())
		}
		for _, want := range wantDB.Objects() {
			o := got.Get(want.ID)
			if o == nil {
				t.Fatalf("seed %d: object %d missing", seed, want.ID)
			}
			if len(o.Observations) != len(want.Observations) {
				t.Fatalf("seed %d: object %d has %d observations, want %d",
					seed, want.ID, len(o.Observations), len(want.Observations))
			}
			for k, ob := range o.Observations {
				wb := want.Observations[k]
				if ob.Time != wb.Time {
					t.Fatalf("seed %d: object %d obs %d time %d, want %d", seed, want.ID, k, ob.Time, wb.Time)
				}
				for _, s := range wb.PDF.Support() {
					if ob.PDF.P(s) != wb.PDF.P(s) {
						t.Fatalf("seed %d: object %d obs %d state %d: %g, want %g",
							seed, want.ID, k, s, ob.PDF.P(s), wb.PDF.P(s))
					}
				}
			}
			// The column plane must be pre-seeded and claimed.
			seg, ok := got.Columns().Segment(want.ID)
			if !ok || seg.Len() != len(want.Observations) {
				t.Fatalf("seed %d: object %d plane segment missing or wrong length", seed, want.ID)
			}
		}
	}
}

// TestV2OwnChainRoundTrip covers the per-object chain block.
func TestV2OwnChainRoundTrip(t *testing.T) {
	db := testDB(t) // object 7 carries its own chain
	got, err := LoadDatabaseMapped(saveV2(t, db))
	if err != nil {
		t.Fatal(err)
	}
	o := got.Get(7)
	if o == nil || o.Chain == nil {
		t.Fatal("own-chain object lost its chain")
	}
	want := db.Get(7).Chain
	n := want.NumStates()
	if o.Chain.NumStates() != n {
		t.Fatalf("own chain has %d states, want %d", o.Chain.NumStates(), n)
	}
	for i := 0; i < n; i++ {
		ci, vi := want.Matrix().RowSlices(i)
		gi, wi := o.Chain.Matrix().RowSlices(i)
		if len(ci) != len(gi) {
			t.Fatalf("row %d: %d entries, want %d", i, len(gi), len(ci))
		}
		for k := range ci {
			if ci[k] != gi[k] || vi[k] != wi[k] {
				t.Fatalf("row %d entry %d mismatch", i, k)
			}
		}
	}
}

// TestV2CorruptionDetection flips bytes all over a v2 file and checks
// every corruption is caught by the CRC (never a panic, never a silent
// wrong database).
func TestV2CorruptionDetection(t *testing.T) {
	data := saveV2(t, testDB(t))
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		corrupted := append([]byte(nil), data...)
		corrupted[rng.Intn(len(corrupted))] ^= byte(1 + rng.Intn(255))
		if _, err := LoadDatabaseMapped(corrupted); err == nil {
			t.Fatalf("trial %d: corruption not detected", trial)
		}
	}
}

// TestV2TruncationDetection cuts a v2 file at every length and expects
// ErrCorrupt-wrapped failures throughout.
func TestV2TruncationDetection(t *testing.T) {
	data := saveV2(t, testDB(t))
	for cut := 0; cut < len(data); cut++ {
		_, err := LoadDatabaseMapped(data[:cut])
		if err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}
}

// TestV2ProbColumnAligned verifies the writer's padding promise: the
// float column sits at an 8-aligned file offset, so an 8-aligned buffer
// gets the zero-copy adopt.
func TestV2ProbColumnAligned(t *testing.T) {
	for objects := 1; objects < 9; objects++ {
		p := gen.Params{NumObjects: objects, NumStates: 30, ObjectSpread: 2, StateSpread: 3, MaxStep: 8, Seed: int64(objects)}
		data := saveV2(t, genDB(t, p))

		d := &v2Decoder{body: data[:len(data)-8], off: 12}
		var cb *columnarBlocks
		for {
			tag, err := d.take(4)
			if err != nil {
				t.Fatal(err)
			}
			if *(*[4]byte)(tag) == tagChain {
				br := bytes.NewReader(d.body[d.off:])
				before := br.Len()
				if _, err := readChain(newRawReader(br)); err != nil {
					t.Fatal(err)
				}
				d.off += before - br.Len()
				continue
			}
			if cb, err = skimColumnar(d); err != nil {
				t.Fatal(err)
			}
			break
		}
		padLen := int(cb.probs[0])
		if (cb.probsOff+1+padLen)%8 != 0 {
			t.Fatalf("objects=%d: prob column at file offset %d, not 8-aligned",
				objects, cb.probsOff+1+padLen)
		}
	}
}

// TestV2ZeroCopyAliasesBuffer pins the adopt: with an 8-aligned buffer,
// the loaded pdf values point into the caller's bytes.
func TestV2ZeroCopyAliasesBuffer(t *testing.T) {
	data := saveV2(t, testDB(t))
	db, err := LoadDatabaseMapped(data)
	if err != nil {
		t.Fatal(err)
	}
	seg, ok := db.Columns().Segment(2)
	if !ok || len(seg.Probs) == 0 {
		t.Fatal("no segment for object 2")
	}
	// The segment's prob slice must alias data's backing array: its
	// pointer lies within the buffer.
	start := uintptr(unsafe.Pointer(&data[0]))
	end := start + uintptr(len(data))
	pp := uintptr(unsafe.Pointer(&seg.Probs[0]))
	if pp < start || pp >= end {
		if uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
			t.Skip("buffer not 8-aligned — copy fallback is the correct behavior")
		}
		t.Fatal("aligned buffer but prob column was copied, not adopted")
	}
}

// TestV2EmptyDatabase round-trips a database with no objects.
func TestV2EmptyDatabase(t *testing.T) {
	db := core.NewDatabase(testChain(t))
	got, err := LoadDatabaseMapped(saveV2(t, db))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("empty database loaded %d objects", got.Len())
	}
}

// TestV2PreservesQueryResultsQuick: generated datasets answer queries
// identically before and after a v2 round trip.
func TestV2PreservesQueryResultsQuick(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		p := gen.Params{NumObjects: 12, NumStates: 50, ObjectSpread: 3, StateSpread: 4, MaxStep: 12, Seed: seed}
		db := genDB(t, p)
		loaded, err := LoadDatabaseMapped(saveV2(t, db))
		if err != nil {
			t.Fatal(err)
		}
		q := core.NewQuery([]int{1, 2, 3, 4}, []int{2, 3, 4})
		want, err := core.NewEngine(db, core.Options{}).Exists(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.NewEngine(loaded, core.Options{}).Exists(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("seed %d: %d results, want %d", seed, len(got), len(want))
		}
		for i := range want {
			if want[i].ObjectID != got[i].ObjectID || want[i].Prob != got[i].Prob {
				t.Fatalf("seed %d result %d: %+v, want %+v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestUnsupportedVersionMessage checks the version gate names both
// supported versions.
func TestUnsupportedVersionMessage(t *testing.T) {
	data := saveV2(t, testDB(t))
	bad := append([]byte(nil), data...)
	bad[4] = 9 // version field
	fixupCRC(bad)
	_, err := LoadDatabaseMapped(bad)
	if err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("version gate: err = %v, want non-corrupt unsupported-version error", err)
	}
}
