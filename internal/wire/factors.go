package wire

import (
	"fmt"
	"math"

	"ust/internal/agg"
	"ust/internal/core"
)

// Factor wire shapes: the distributed aggregate protocol. A coordinator
// answering count(...) or occupancy over a sharded fleet must NOT pool
// per-shard PMFs — the divide-and-conquer product tree is only
// byte-identical when folded over the full factor list in canonical
// (object-id) order. So workers ship raw Bernoulli factors and the
// coordinator folds; this file pins their JSON shape with the same
// strictness as the query codec (unknown fields rejected, float64 bits
// preserved by shortest-round-trip encoding, hostile lengths bounded).

// Factor is the JSON shape of an agg.Factor: one object's contribution
// to an aggregate — its id and the Bernoulli/profile coefficients.
type Factor struct {
	ID     int       `json:"id"`
	Coeffs []float64 `json:"coeffs"`
}

// FactorSet is the JSON shape of a core.FactorSet.
type FactorSet struct {
	Factors  []Factor       `json:"factors"`
	Times    []int          `json:"times,omitempty"`
	Strategy string         `json:"strategy"`
	Plans    []CostEstimate `json:"plans,omitempty"`
	Cache    CacheReport    `json:"cache,omitzero"`
	Filter   FilterReport   `json:"filter,omitzero"`
}

// FromFactorSet converts a core.FactorSet into its wire shape.
func FromFactorSet(fs *core.FactorSet) (FactorSet, error) {
	strat, err := strategyName(fs.Strategy)
	if err != nil {
		return FactorSet{}, err
	}
	w := FactorSet{
		Factors:  make([]Factor, 0, len(fs.Factors)),
		Times:    fs.Times,
		Strategy: strat,
		Cache:    CacheReport(fs.Cache),
		Filter:   FilterReport(fs.Filter),
	}
	for _, f := range fs.Factors {
		w.Factors = append(w.Factors, Factor{ID: f.ID, Coeffs: f.Coeffs})
	}
	for _, p := range fs.Plans {
		ps, perr := strategyName(p.Strategy)
		if perr != nil {
			return FactorSet{}, perr
		}
		w.Plans = append(w.Plans, CostEstimate{Strategy: ps, Sweeps: p.Sweeps, Ops: p.Ops, FilterOps: p.FilterOps})
	}
	return w, nil
}

// ToFactorSet converts a wire FactorSet back into a core.FactorSet,
// validating lengths and coefficient finiteness.
func (w FactorSet) ToFactorSet() (*core.FactorSet, error) {
	strat, err := parseStrategy(w.Strategy)
	if err != nil {
		return nil, err
	}
	if len(w.Factors) > maxWireInts || len(w.Times) > maxWireInts {
		return nil, fmt.Errorf("%w: factor set too large", ErrDecode)
	}
	fs := &core.FactorSet{
		Times:    w.Times,
		Strategy: strat,
		Cache:    core.CacheReport(w.Cache),
		Filter:   core.FilterReport(w.Filter),
	}
	for _, f := range w.Factors {
		if len(f.Coeffs) > maxWireInts {
			return nil, fmt.Errorf("%w: factor %d oversized", ErrDecode, f.ID)
		}
		for _, c := range f.Coeffs {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, fmt.Errorf("%w: factor %d has non-finite coefficient", ErrDecode, f.ID)
			}
		}
		fs.Factors = append(fs.Factors, agg.Factor{ID: f.ID, Coeffs: f.Coeffs})
	}
	for _, p := range w.Plans {
		ps, perr := parseStrategy(p.Strategy)
		if perr != nil {
			return nil, perr
		}
		fs.Plans = append(fs.Plans, core.CostEstimate{Strategy: ps, Sweeps: p.Sweeps, Ops: p.Ops, FilterOps: p.FilterOps})
	}
	return fs, nil
}

// DecodeFactorSet strictly unmarshals a wire FactorSet.
func DecodeFactorSet(data []byte) (*core.FactorSet, error) {
	var w FactorSet
	if err := StrictUnmarshal(data, &w); err != nil {
		return nil, err
	}
	return w.ToFactorSet()
}

// --- sweep lease protocol -------------------------------------------------

// SweepKey names one backward sweep in process-independent terms. The
// core type already carries wire-stable JSON tags, so the wire shape is
// an alias — the two layers cannot drift.
type SweepKey = core.SweepKey

// SweepAcquire is the body of POST /v1/sweeps/acquire.
type SweepAcquire struct {
	Key SweepKey `json:"key"`
}

// SweepGrant is the acquire response. Exactly one of Payload and Lease
// is meaningful: a payload means a peer already computed the sweep
// (adopt it); a lease token means the caller holds the fleet-wide
// computation right and must Fill or Release it.
type SweepGrant struct {
	Payload []byte `json:"payload,omitempty"`
	Lease   string `json:"lease,omitempty"`
}

// SweepFill is the body of POST /v1/sweeps/fill: the computed payload
// published under a held lease.
type SweepFill struct {
	Key     SweepKey `json:"key"`
	Lease   string   `json:"lease"`
	Payload []byte   `json:"payload"`
}

// SweepRelease is the body of POST /v1/sweeps/release: the caller
// abandons a held lease without filling it so a waiter can take over.
type SweepRelease struct {
	Key   SweepKey `json:"key"`
	Lease string   `json:"lease"`
}

// --- migration protocol ---------------------------------------------------

// Evict is the body of POST /v1/datasets/{name}/evict: remove the given
// object ids under the router's migration generation fence.
type Evict struct {
	Gen uint64 `json:"gen"`
	IDs []int  `json:"ids"`
}
