package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeRequest drives hostile bytes through the strict request
// decoder. Invariants: never panic; whatever decodes successfully must
// re-encode, and the re-encoded canonical form must be a fixed point
// (encode ∘ decode is idempotent) — the property the service layer's
// single-flight keying relies on.
func FuzzDecodeRequest(f *testing.F) {
	seeds := []string{
		`{"predicate":"exists"}`,
		`{"predicate":"forall","states":[1,2,3],"times":[4,5]}`,
		`{"predicate":"ktimes","states":[0],"times":[1],"strategy":"ob","workers":-1}`,
		`{"predicate":"eventually","states":[2],"hitting":{"max_steps":100,"tol":1e-9}}`,
		`{"predicate":"exists","states":[1],"times":[2],"auto_plan":true,"threshold":0.5,"top_k":3}`,
		`{"predicate":"exists","monte_carlo":{"samples":10,"seed":-4},"cache":false,"filter_refine":true}`,
		`{"predicate":"exists","region":{"type":"rect","min":[0,0],"max":[2,2]},"times":[1]}`,
		`{"predicate":"exists","region":{"type":"union","regions":[{"type":"circle","center":[1,1],"radius":2}]}}`,
		`{"predicate":"exists","region":{"type":"difference","base":{"type":"rect","min":[0,0],"max":[9,9]},"sub":{"type":"polygon","vertices":[[0,0],[1,0],[0,1]]}}}`,
		`{"predicate":"exists","states":[18446744073709551615]}`,
		`{"predicate":"exists","threshold":1e308}`,
		`{"predicate":"expr","expr":{"op":"atom","states":[1,2],"times":[3,4]}}`,
		`{"predicate":"expr","expr":{"op":"and","operands":[{"op":"atom","states":[1],"times":[2]},{"op":"not","operands":[{"op":"atom","forall":true,"states":[3],"times":[4]}]}]},"threshold":0.5}`,
		`{"predicate":"expr","expr":{"op":"then","operands":[{"op":"atom","states":[1],"times":[2]},{"op":"atom","region":{"type":"circle","center":[1,1],"radius":2},"times":[5]}]}}`,
		`{"predicate":"expr","expr":{"op":"or","operands":[]}}`,
		`{"predicate":"exists","expr":{"op":"atom"}}`,
		`{"predicate":"exists","states":[2],"times":[3],"aggregate":{"kind":"count","min_count":3}}`,
		`{"predicate":"exists","states":[1],"times":[0,5],"aggregate":{"kind":"occupancy"}}`,
		`{"predicate":"ktimes","states":[4],"times":[1,2],"aggregate":{"kind":"count"},"strategy":"ob"}`,
		`{"predicate":"expr","expr":{"op":"atom","states":[1],"times":[2]},"aggregate":{"kind":"count","min_count":1}}`,
		`{"predicate":"exists","aggregate":{"kind":"median"}}`,
		`{"predicate":"exists","aggregate":{"kind":"count","min_count":-1}}`,
		`[]`, `null`, `{}`, `{{`, "\x00\xff", `{"predicate":"exists"}{"predicate":"exists"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		enc, err := EncodeRequest(req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v (input %q)", err, data)
		}
		req2, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("canonical form does not decode: %v (canonical %q)", err, enc)
		}
		enc2, err := EncodeRequest(req2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical form unstable:\n  first  %s\n  second %s", enc, enc2)
		}
	})
}
