// Package wire gives the query API a stable, strict JSON encoding: the
// network contract between ustserve, the client package and any non-Go
// caller. Every part of a core.Request — predicate, raw state/time
// windows, geometric regions, strategy and planner hints, ranking,
// budgets and cache toggles — round-trips exactly, and Response/Result
// round-trip with float64 precision intact (encoding/json emits the
// shortest representation that parses back to the identical bits, so
// remote results can be byte-identical to in-process evaluation).
//
// Decoding is strict and fuzz-safe: unknown fields, unknown enum
// values, trailing garbage, malformed geometry and absurd sizes are
// errors, never panics. The one lossy spot is deliberate: a Request's
// Resolver (an in-process index) cannot travel; regions are encoded
// geometrically and the server re-attaches its dataset's resolver.
package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"ust/internal/core"
	"ust/internal/spatial"
)

// ErrDecode wraps every decoding failure.
var ErrDecode = errors.New("wire: bad message")

// Request is the JSON shape of a core.Request.
type Request struct {
	Predicate    string      `json:"predicate"`
	States       []int       `json:"states,omitempty"`
	Times        []int       `json:"times,omitempty"`
	Region       *Region     `json:"region,omitempty"`
	Expr         *Expr       `json:"expr,omitempty"`
	Strategy     string      `json:"strategy,omitempty"`
	AutoPlan     bool        `json:"auto_plan,omitempty"`
	Threshold    *float64    `json:"threshold,omitempty"`
	TopK         int         `json:"top_k,omitempty"`
	Workers      int         `json:"workers,omitempty"`
	MonteCarlo   *MonteCarlo `json:"monte_carlo,omitempty"`
	Hitting      *Hitting    `json:"hitting,omitempty"`
	Cache        *bool       `json:"cache,omitempty"`
	FilterRefine *bool       `json:"filter_refine,omitempty"`
	Aggregate    *Aggregate  `json:"aggregate,omitempty"`
}

// Aggregate is the JSON shape of a core.AggSpec: it turns the request
// into a database-level aggregate over its predicate.
//
//	{"predicate":"exists","states":[2],"times":[3],"aggregate":{"kind":"count","min_count":3}}
type Aggregate struct {
	Kind     string `json:"kind"`
	MinCount int    `json:"min_count,omitempty"`
}

// AggPoint is the JSON shape of one occupancy-profile timestep.
type AggPoint struct {
	Time     int     `json:"time"`
	Mean     float64 `json:"mean"`
	Variance float64 `json:"variance"`
	Tail     float64 `json:"tail,omitempty"`
}

// AggResult is the JSON shape of a core.AggResult, carried on Response
// (and on the single agg line of a streamed aggregate).
type AggResult struct {
	Kind     string     `json:"kind"`
	MinCount int        `json:"min_count,omitempty"`
	PMF      []float64  `json:"pmf,omitempty"`
	Mean     float64    `json:"mean,omitempty"`
	Variance float64    `json:"variance,omitempty"`
	Mode     int        `json:"mode,omitempty"`
	Tail     float64    `json:"tail,omitempty"`
	Profile  []AggPoint `json:"profile,omitempty"`
}

// Expr is the JSON shape of a core.Expr: a tagged tree over exists/
// forall atoms.
//
//	{"op":"atom","forall":true,"states":[3,4],"times":[0,9]}
//	{"op":"and","operands":[...]}   (also "or", "then")
//	{"op":"not","operands":[{...}]}
type Expr struct {
	Op       string  `json:"op"`
	ForAll   bool    `json:"forall,omitempty"`
	States   []int   `json:"states,omitempty"`
	Times    []int   `json:"times,omitempty"`
	Region   *Region `json:"region,omitempty"`
	Operands []Expr  `json:"operands,omitempty"`
}

// MonteCarlo is the sampling budget of a Request.
type MonteCarlo struct {
	Samples int   `json:"samples"`
	Seed    int64 `json:"seed"`
}

// Hitting is the fixed-point budget of eventually-requests.
type Hitting struct {
	MaxSteps int     `json:"max_steps,omitempty"`
	Tol      float64 `json:"tol,omitempty"`
}

// Region is the JSON shape of a spatial.Region: a tagged union over the
// library's region algebra.
//
//	{"type":"rect","min":[x,y],"max":[x,y]}
//	{"type":"circle","center":[x,y],"radius":r}
//	{"type":"polygon","vertices":[[x,y],...]}
//	{"type":"union","regions":[...]}
//	{"type":"difference","base":{...},"sub":{...}}
type Region struct {
	Type     string       `json:"type"`
	Min      *[2]float64  `json:"min,omitempty"`
	Max      *[2]float64  `json:"max,omitempty"`
	Center   *[2]float64  `json:"center,omitempty"`
	Radius   float64      `json:"radius,omitempty"`
	Vertices [][2]float64 `json:"vertices,omitempty"`
	Regions  []Region     `json:"regions,omitempty"`
	Base     *Region      `json:"base,omitempty"`
	Sub      *Region      `json:"sub,omitempty"`
}

// Result is the JSON shape of a core.Result.
type Result struct {
	Object int       `json:"object"`
	Prob   float64   `json:"prob"`
	Dist   []float64 `json:"dist,omitempty"`
}

// CostEstimate is the JSON shape of a planner estimate.
type CostEstimate struct {
	Strategy  string  `json:"strategy"`
	Sweeps    int     `json:"sweeps"`
	Ops       float64 `json:"ops"`
	FilterOps float64 `json:"filter_ops,omitempty"`
}

// CacheReport mirrors core.CacheReport.
type CacheReport struct {
	Hits   int `json:"hits,omitempty"`
	Misses int `json:"misses,omitempty"`
}

// FilterReport mirrors core.FilterReport.
type FilterReport struct {
	Candidates int `json:"candidates,omitempty"`
	Pruned     int `json:"pruned,omitempty"`
	Refined    int `json:"refined,omitempty"`
}

// Response is the JSON shape of a core.Response.
type Response struct {
	Results  []Result       `json:"results"`
	Strategy string         `json:"strategy"`
	Plans    []CostEstimate `json:"plans,omitempty"`
	Cache    CacheReport    `json:"cache,omitzero"`
	Filter   FilterReport   `json:"filter,omitzero"`
	Agg      *AggResult     `json:"agg,omitempty"`
}

// QueryEnvelope is the body of POST /v1/query, /v1/query/stream and
// /v1/subscribe: a request addressed to a named dataset. Exactly one of
// Request (structured wire form) or Query (the compact text query
// language of package ust/query, parsed server-side) must be set.
type QueryEnvelope struct {
	Dataset string   `json:"dataset"`
	Request *Request `json:"request,omitempty"`
	Query   string   `json:"query,omitempty"`
}

// StreamLine is one NDJSON line of a /v1/query/stream response: exactly
// one of Result, Agg, Error or Done is set. The Done line closes a
// successful stream and carries the delivered-result count so clients
// can detect truncation. An aggregate request streams as exactly one
// Agg line followed by Done (the distribution is one answer, not a
// per-object sequence).
type StreamLine struct {
	Result *Result    `json:"result,omitempty"`
	Agg    *AggResult `json:"agg,omitempty"`
	Error  string     `json:"error,omitempty"`
	Done   bool       `json:"done,omitempty"`
	Count  int        `json:"count,omitempty"`
}

// Update is one NDJSON line of a /v1/subscribe response: an incremental
// refresh of a standing query. The first update of a subscription has
// Full set and carries the complete result set; later updates carry
// only changed-or-new results plus the ids that stopped qualifying.
type Update struct {
	Seq     uint64   `json:"seq"`
	Version uint64   `json:"version,omitempty"`
	Full    bool     `json:"full,omitempty"`
	Results []Result `json:"results,omitempty"`
	Removed []int    `json:"removed,omitempty"`
	Error   string   `json:"error,omitempty"`
}

// Observation is the ingest shape of one sighting (the same sparse-pdf
// layout as the JSON export format).
type Observation struct {
	Time   int       `json:"time"`
	States []int     `json:"states"`
	Probs  []float64 `json:"probs"`
}

// Object is the ingest shape of a new object (default-chain only; motion
// models do not travel over the wire).
type Object struct {
	ID           int           `json:"id"`
	Observations []Observation `json:"observations"`
}

// DatasetInfo describes one named dataset of a service.
type DatasetInfo struct {
	Name    string `json:"name"`
	Objects int    `json:"objects"`
	States  int    `json:"states"`
	Version uint64 `json:"version"`
}

// ErrorBody is the JSON error envelope of non-2xx HTTP responses.
type ErrorBody struct {
	Error string `json:"error"`
}

// --- Request codec --------------------------------------------------------

func predicateName(p core.Predicate) (string, error) {
	switch p {
	case core.PredicateExists:
		return "exists", nil
	case core.PredicateForAll:
		return "forall", nil
	case core.PredicateKTimes:
		return "ktimes", nil
	case core.PredicateEventually:
		return "eventually", nil
	case core.PredicateExpr:
		return "expr", nil
	default:
		return "", fmt.Errorf("wire: unknown predicate %v", p)
	}
}

func parsePredicate(s string) (core.Predicate, error) {
	switch s {
	case "exists":
		return core.PredicateExists, nil
	case "forall":
		return core.PredicateForAll, nil
	case "ktimes":
		return core.PredicateKTimes, nil
	case "eventually":
		return core.PredicateEventually, nil
	case "expr":
		return core.PredicateExpr, nil
	default:
		return 0, fmt.Errorf("%w: unknown predicate %q", ErrDecode, s)
	}
}

// --- Expr codec -----------------------------------------------------------

func fromExpr(x core.Expr) (Expr, error) {
	if a, ok := x.Atom(); ok {
		w := Expr{Op: "atom", ForAll: a.ForAll, States: a.States, Times: a.Times}
		if a.Region != nil {
			reg, err := fromRegion(a.Region)
			if err != nil {
				return Expr{}, err
			}
			w.Region = &reg
		}
		return w, nil
	}
	var op string
	switch x.Op() {
	case core.ExprAnd:
		op = "and"
	case core.ExprOr:
		op = "or"
	case core.ExprNot:
		op = "not"
	case core.ExprThen:
		op = "then"
	default:
		return Expr{}, fmt.Errorf("wire: unknown expression op %v", x.Op())
	}
	kids := x.Operands()
	w := Expr{Op: op, Operands: make([]Expr, len(kids))}
	for i, kid := range kids {
		enc, err := fromExpr(kid)
		if err != nil {
			return Expr{}, err
		}
		w.Operands[i] = enc
	}
	return w, nil
}

// maxExprDepth bounds expression nesting so hostile input cannot drive
// unbounded recursion. (The atom budget is enforced by the engine's own
// validation; depth is the decoder's concern.)
const maxExprDepth = 64

func (w Expr) toExpr(depth int) (core.Expr, error) {
	if depth > maxExprDepth {
		return core.Expr{}, fmt.Errorf("%w: expression nesting deeper than %d", ErrDecode, maxExprDepth)
	}
	switch w.Op {
	case "atom":
		if len(w.States) > maxWireInts || len(w.Times) > maxWireInts {
			return core.Expr{}, fmt.Errorf("%w: atom window too large", ErrDecode)
		}
		a := core.ExprAtom{ForAll: w.ForAll, States: w.States, Times: w.Times}
		if w.Region != nil {
			reg, err := w.Region.toRegion(0)
			if err != nil {
				return core.Expr{}, err
			}
			a.Region = reg
		}
		if len(w.Operands) != 0 {
			return core.Expr{}, fmt.Errorf("%w: atom with operands", ErrDecode)
		}
		return core.NewAtom(a), nil
	case "and", "or", "not", "then":
		if w.ForAll || w.States != nil || w.Times != nil || w.Region != nil {
			return core.Expr{}, fmt.Errorf("%w: %s node with atom fields", ErrDecode, w.Op)
		}
		kids := make([]core.Expr, len(w.Operands))
		for i, kw := range w.Operands {
			kid, err := kw.toExpr(depth + 1)
			if err != nil {
				return core.Expr{}, err
			}
			kids[i] = kid
		}
		switch w.Op {
		case "and":
			return core.And(kids...), nil
		case "or":
			return core.Or(kids...), nil
		case "then":
			return core.Then(kids...), nil
		default: // not
			if len(kids) != 1 {
				return core.Expr{}, fmt.Errorf("%w: not takes exactly one operand, got %d", ErrDecode, len(kids))
			}
			return core.Not(kids[0]), nil
		}
	default:
		return core.Expr{}, fmt.Errorf("%w: unknown expression op %q", ErrDecode, w.Op)
	}
}

func aggKindName(k core.AggKind) (string, error) {
	switch k {
	case core.AggCount:
		return "count", nil
	case core.AggOccupancy:
		return "occupancy", nil
	default:
		return "", fmt.Errorf("wire: unknown aggregate kind %v", k)
	}
}

func parseAggKind(s string) (core.AggKind, error) {
	switch s {
	case "count":
		return core.AggCount, nil
	case "occupancy":
		return core.AggOccupancy, nil
	default:
		return 0, fmt.Errorf("%w: unknown aggregate kind %q", ErrDecode, s)
	}
}

func strategyName(s core.Strategy) (string, error) {
	switch s {
	case core.StrategyQueryBased:
		return "qb", nil
	case core.StrategyObjectBased:
		return "ob", nil
	case core.StrategyMonteCarlo:
		return "mc", nil
	default:
		return "", fmt.Errorf("wire: unknown strategy %v", s)
	}
}

func parseStrategy(s string) (core.Strategy, error) {
	switch s {
	case "qb":
		return core.StrategyQueryBased, nil
	case "ob":
		return core.StrategyObjectBased, nil
	case "mc":
		return core.StrategyMonteCarlo, nil
	default:
		return 0, fmt.Errorf("%w: unknown strategy %q", ErrDecode, s)
	}
}

// FromRequest converts a core.Request into its wire shape. It fails on
// region implementations outside the library's algebra (those cannot be
// expressed geometrically on the wire).
func FromRequest(r core.Request) (Request, error) {
	pred, err := predicateName(r.Predicate)
	if err != nil {
		return Request{}, err
	}
	w := Request{
		Predicate: pred,
		States:    r.States,
		Times:     r.Times,
		TopK:      r.TopKHint(),
		Workers:   r.ParallelismHint(),
		AutoPlan:  r.AutoPlanHint(),
	}
	if r.Region != nil {
		reg, rerr := fromRegion(r.Region)
		if rerr != nil {
			return Request{}, rerr
		}
		w.Region = &reg
	}
	if x, ok := r.ExprHint(); ok {
		enc, xerr := fromExpr(x)
		if xerr != nil {
			return Request{}, xerr
		}
		w.Expr = &enc
	}
	if s, ok := r.StrategyHint(); ok {
		name, serr := strategyName(s)
		if serr != nil {
			return Request{}, serr
		}
		w.Strategy = name
	}
	if tau, ok := r.ThresholdHint(); ok {
		w.Threshold = &tau
	}
	if samples, seed, ok := r.MonteCarloHint(); ok {
		w.MonteCarlo = &MonteCarlo{Samples: samples, Seed: seed}
	}
	if maxSteps, tol := r.HittingHint(); maxSteps != 0 || tol != 0 {
		w.Hitting = &Hitting{MaxSteps: maxSteps, Tol: tol}
	}
	if enabled, ok := r.CacheHint(); ok {
		w.Cache = &enabled
	}
	if enabled, ok := r.FilterRefineHint(); ok {
		w.FilterRefine = &enabled
	}
	if spec, ok := r.AggregateHint(); ok {
		kind, kerr := aggKindName(spec.Kind)
		if kerr != nil {
			return Request{}, kerr
		}
		w.Aggregate = &Aggregate{Kind: kind, MinCount: spec.MinCount}
	}
	return w, nil
}

// maxWireInts bounds decoded state/time lists; hostile messages must not
// force pathological allocations. (A million-state window is legitimate;
// the engine re-validates ids against the actual state space anyway.)
const maxWireInts = 1 << 24

// ToRequest converts a wire Request back into a core.Request. The
// Resolver is left nil — the serving layer attaches the dataset's
// resolver when the request carries a region.
func (w Request) ToRequest() (core.Request, error) {
	pred, err := parsePredicate(w.Predicate)
	if err != nil {
		return core.Request{}, err
	}
	if len(w.States) > maxWireInts || len(w.Times) > maxWireInts {
		return core.Request{}, fmt.Errorf("%w: window too large", ErrDecode)
	}
	var opts []core.RequestOption
	if w.States != nil {
		opts = append(opts, core.WithStates(w.States))
	}
	if w.Times != nil {
		opts = append(opts, core.WithTimes(w.Times))
	}
	if w.Region != nil {
		reg, rerr := w.Region.toRegion(0)
		if rerr != nil {
			return core.Request{}, rerr
		}
		opts = append(opts, core.WithRegion(reg, nil))
	}
	if (pred == core.PredicateExpr) != (w.Expr != nil) {
		return core.Request{}, fmt.Errorf("%w: predicate %q and expr field must come together", ErrDecode, w.Predicate)
	}
	if w.Expr != nil {
		x, xerr := w.Expr.toExpr(0)
		if xerr != nil {
			return core.Request{}, xerr
		}
		opts = append(opts, core.WithExpr(x))
	}
	if w.AutoPlan {
		opts = append(opts, core.WithAutoPlan())
	}
	if w.Strategy != "" {
		s, serr := parseStrategy(w.Strategy)
		if serr != nil {
			return core.Request{}, serr
		}
		opts = append(opts, core.WithStrategy(s))
	}
	if w.Threshold != nil {
		if *w.Threshold < 0 || *w.Threshold > 1 || math.IsNaN(*w.Threshold) {
			return core.Request{}, fmt.Errorf("%w: threshold %v outside [0,1]", ErrDecode, *w.Threshold)
		}
		opts = append(opts, core.WithThreshold(*w.Threshold))
	}
	if w.TopK < 0 {
		return core.Request{}, fmt.Errorf("%w: negative top_k %d", ErrDecode, w.TopK)
	}
	if w.TopK > 0 {
		opts = append(opts, core.WithTopK(w.TopK))
	}
	if w.Workers != 0 {
		workers := w.Workers
		if workers < 0 {
			workers = 0 // WithParallelism maps ≤0 to "GOMAXPROCS"
		}
		opts = append(opts, core.WithParallelism(workers))
	}
	if w.MonteCarlo != nil {
		if w.MonteCarlo.Samples < 0 {
			return core.Request{}, fmt.Errorf("%w: negative monte_carlo.samples", ErrDecode)
		}
		opts = append(opts, core.WithMonteCarloBudget(w.MonteCarlo.Samples, w.MonteCarlo.Seed))
	}
	if w.Hitting != nil {
		if math.IsNaN(w.Hitting.Tol) {
			return core.Request{}, fmt.Errorf("%w: hitting.tol is NaN", ErrDecode)
		}
		opts = append(opts, core.WithHittingLimits(w.Hitting.MaxSteps, w.Hitting.Tol))
	}
	if w.Cache != nil {
		opts = append(opts, core.WithCache(*w.Cache))
	}
	if w.FilterRefine != nil {
		opts = append(opts, core.WithFilterRefine(*w.FilterRefine))
	}
	if w.Aggregate != nil {
		kind, kerr := parseAggKind(w.Aggregate.Kind)
		if kerr != nil {
			return core.Request{}, kerr
		}
		if w.Aggregate.MinCount < 0 {
			return core.Request{}, fmt.Errorf("%w: negative aggregate min_count %d", ErrDecode, w.Aggregate.MinCount)
		}
		opts = append(opts, core.WithAggregate(core.AggSpec{Kind: kind, MinCount: w.Aggregate.MinCount}))
	}
	return core.NewRequest(pred, opts...), nil
}

// EncodeRequest marshals a core.Request to its canonical wire bytes.
// The encoding is deterministic, which is what lets the service layer
// key single-flight coalescing on it.
func EncodeRequest(r core.Request) ([]byte, error) {
	w, err := FromRequest(r)
	if err != nil {
		return nil, err
	}
	return json.Marshal(w)
}

// DecodeRequest strictly unmarshals wire bytes into a core.Request:
// unknown fields, unknown enum values and trailing garbage are errors.
func DecodeRequest(data []byte) (core.Request, error) {
	var w Request
	if err := StrictUnmarshal(data, &w); err != nil {
		return core.Request{}, err
	}
	return w.ToRequest()
}

// StrictUnmarshal decodes one JSON value with unknown fields disallowed
// and rejects trailing non-whitespace — the decoding contract every
// wire consumer (request decoder, HTTP handlers) shares.
func StrictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrDecode, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: trailing data", ErrDecode)
	}
	return nil
}

// --- Region codec ---------------------------------------------------------

func pt(p spatial.Point) *[2]float64 { return &[2]float64{p.X, p.Y} }

func fromRegion(r spatial.Region) (Region, error) {
	switch v := r.(type) {
	case spatial.Rect:
		return Region{Type: "rect", Min: &[2]float64{v.MinX, v.MinY}, Max: &[2]float64{v.MaxX, v.MaxY}}, nil
	case spatial.Circle:
		return Region{Type: "circle", Center: pt(v.Center), Radius: v.Radius}, nil
	case spatial.Polygon:
		verts := make([][2]float64, len(v.Vertices))
		for i, p := range v.Vertices {
			verts[i] = [2]float64{p.X, p.Y}
		}
		return Region{Type: "polygon", Vertices: verts}, nil
	case spatial.Union:
		members := make([]Region, len(v))
		for i, m := range v {
			enc, err := fromRegion(m)
			if err != nil {
				return Region{}, err
			}
			members[i] = enc
		}
		return Region{Type: "union", Regions: members}, nil
	case spatial.Difference:
		base, err := fromRegion(v.Base)
		if err != nil {
			return Region{}, err
		}
		sub, err := fromRegion(v.Sub)
		if err != nil {
			return Region{}, err
		}
		return Region{Type: "difference", Base: &base, Sub: &sub}, nil
	default:
		return Region{}, fmt.Errorf("wire: region type %T has no wire encoding", r)
	}
}

// maxRegionDepth bounds union/difference nesting so hostile input cannot
// drive unbounded recursion.
const maxRegionDepth = 64

func (w Region) toRegion(depth int) (spatial.Region, error) {
	if depth > maxRegionDepth {
		return nil, fmt.Errorf("%w: region nesting deeper than %d", ErrDecode, maxRegionDepth)
	}
	switch w.Type {
	case "rect":
		if w.Min == nil || w.Max == nil {
			return nil, fmt.Errorf("%w: rect needs min and max", ErrDecode)
		}
		return spatial.NewRect(w.Min[0], w.Min[1], w.Max[0], w.Max[1]), nil
	case "circle":
		if w.Center == nil {
			return nil, fmt.Errorf("%w: circle needs a center", ErrDecode)
		}
		if w.Radius < 0 || math.IsNaN(w.Radius) {
			return nil, fmt.Errorf("%w: circle radius %v", ErrDecode, w.Radius)
		}
		return spatial.Circle{Center: spatial.Point{X: w.Center[0], Y: w.Center[1]}, Radius: w.Radius}, nil
	case "polygon":
		verts := make([]spatial.Point, len(w.Vertices))
		for i, v := range w.Vertices {
			verts[i] = spatial.Point{X: v[0], Y: v[1]}
		}
		pg, err := spatial.NewPolygon(verts)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDecode, err)
		}
		return pg, nil
	case "union":
		members := make(spatial.Union, len(w.Regions))
		for i, m := range w.Regions {
			dec, err := m.toRegion(depth + 1)
			if err != nil {
				return nil, err
			}
			members[i] = dec
		}
		return members, nil
	case "difference":
		if w.Base == nil || w.Sub == nil {
			return nil, fmt.Errorf("%w: difference needs base and sub", ErrDecode)
		}
		base, err := w.Base.toRegion(depth + 1)
		if err != nil {
			return nil, err
		}
		sub, err := w.Sub.toRegion(depth + 1)
		if err != nil {
			return nil, err
		}
		return spatial.Difference{Base: base, Sub: sub}, nil
	default:
		return nil, fmt.Errorf("%w: unknown region type %q", ErrDecode, w.Type)
	}
}

// --- Result / Response codec ----------------------------------------------

// FromResult converts a core.Result to its wire shape.
func FromResult(r core.Result) Result {
	return Result{Object: r.ObjectID, Prob: r.Prob, Dist: r.Dist}
}

// ToResult converts a wire Result back.
func (r Result) ToResult() core.Result {
	return core.Result{ObjectID: r.Object, Prob: r.Prob, Dist: r.Dist}
}

// FromResults converts a result slice (nil stays nil).
func FromResults(rs []core.Result) []Result {
	if rs == nil {
		return nil
	}
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = FromResult(r)
	}
	return out
}

// ToResults converts a wire result slice back (nil stays nil).
func ToResults(rs []Result) []core.Result {
	if rs == nil {
		return nil
	}
	out := make([]core.Result, len(rs))
	for i, r := range rs {
		out[i] = r.ToResult()
	}
	return out
}

// fromAggResult converts a core.AggResult to its wire shape.
func fromAggResult(a *core.AggResult) (*AggResult, error) {
	kind, err := aggKindName(a.Kind)
	if err != nil {
		return nil, err
	}
	w := &AggResult{
		Kind:     kind,
		MinCount: a.MinCount,
		PMF:      a.PMF,
		Mean:     a.Mean,
		Variance: a.Variance,
		Mode:     a.ModeCount,
		Tail:     a.Tail,
	}
	for _, p := range a.Profile {
		w.Profile = append(w.Profile, AggPoint{Time: p.Time, Mean: p.Mean, Variance: p.Variance, Tail: p.Tail})
	}
	return w, nil
}

// toAggResult converts a wire AggResult back, with the decoder's usual
// strictness: unknown kinds, non-finite or negative probability mass and
// absurd sizes are errors.
func (w *AggResult) toAggResult() (*core.AggResult, error) {
	kind, err := parseAggKind(w.Kind)
	if err != nil {
		return nil, err
	}
	if w.MinCount < 0 {
		return nil, fmt.Errorf("%w: negative aggregate min_count %d", ErrDecode, w.MinCount)
	}
	if len(w.PMF) > maxWireInts || len(w.Profile) > maxWireInts {
		return nil, fmt.Errorf("%w: aggregate result too large", ErrDecode)
	}
	for _, p := range w.PMF {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 {
			return nil, fmt.Errorf("%w: aggregate pmf entry %v", ErrDecode, p)
		}
	}
	a := &core.AggResult{
		Kind:      kind,
		MinCount:  w.MinCount,
		PMF:       w.PMF,
		Mean:      w.Mean,
		Variance:  w.Variance,
		ModeCount: w.Mode,
		Tail:      w.Tail,
	}
	for _, p := range w.Profile {
		if math.IsNaN(p.Mean) || math.IsInf(p.Mean, 0) ||
			math.IsNaN(p.Variance) || math.IsInf(p.Variance, 0) ||
			math.IsNaN(p.Tail) || math.IsInf(p.Tail, 0) {
			return nil, fmt.Errorf("%w: non-finite occupancy point at t=%d", ErrDecode, p.Time)
		}
		a.Profile = append(a.Profile, core.AggPoint{Time: p.Time, Mean: p.Mean, Variance: p.Variance, Tail: p.Tail})
	}
	return a, nil
}

// FromResponse converts a core.Response to its wire shape.
func FromResponse(resp *core.Response) (Response, error) {
	strat, err := strategyName(resp.Strategy)
	if err != nil {
		return Response{}, err
	}
	w := Response{
		Results:  FromResults(resp.Results),
		Strategy: strat,
		Cache:    CacheReport(resp.Cache),
		Filter:   FilterReport(resp.Filter),
	}
	if w.Results == nil {
		w.Results = []Result{}
	}
	for _, p := range resp.Plans {
		ps, perr := strategyName(p.Strategy)
		if perr != nil {
			return Response{}, perr
		}
		w.Plans = append(w.Plans, CostEstimate{Strategy: ps, Sweeps: p.Sweeps, Ops: p.Ops, FilterOps: p.FilterOps})
	}
	if resp.Agg != nil {
		a, aerr := fromAggResult(resp.Agg)
		if aerr != nil {
			return Response{}, aerr
		}
		w.Agg = a
	}
	return w, nil
}

// ToResponse converts a wire Response back into a core.Response.
func (w Response) ToResponse() (*core.Response, error) {
	strat, err := parseStrategy(w.Strategy)
	if err != nil {
		return nil, err
	}
	resp := &core.Response{
		Results:  ToResults(w.Results),
		Strategy: strat,
		Cache:    core.CacheReport(w.Cache),
		Filter:   core.FilterReport(w.Filter),
	}
	for _, p := range w.Plans {
		ps, perr := parseStrategy(p.Strategy)
		if perr != nil {
			return nil, perr
		}
		resp.Plans = append(resp.Plans, core.CostEstimate{Strategy: ps, Sweeps: p.Sweeps, Ops: p.Ops, FilterOps: p.FilterOps})
	}
	if w.Agg != nil {
		a, aerr := w.Agg.toAggResult()
		if aerr != nil {
			return nil, aerr
		}
		resp.Agg = a
	}
	return resp, nil
}

// DecodeResponse strictly unmarshals a wire Response.
func DecodeResponse(data []byte) (*core.Response, error) {
	var w Response
	if err := StrictUnmarshal(data, &w); err != nil {
		return nil, err
	}
	return w.ToResponse()
}
