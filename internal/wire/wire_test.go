package wire

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"ust/internal/core"
	"ust/internal/spatial"
)

// roundTrip encodes and strictly re-decodes one request, failing the
// test on any mismatch. DeepEqual sees the unexported hint fields, so
// this pins every option, not just the exported window.
func roundTrip(t *testing.T, req core.Request) {
	t.Helper()
	data, err := EncodeRequest(req)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeRequest(data)
	if err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
	if !reflect.DeepEqual(got, req) {
		t.Fatalf("round-trip mismatch:\n  sent %#v\n  got  %#v\n  wire %s", req, got, data)
	}
}

func TestRequestRoundTripEveryOption(t *testing.T) {
	reqs := []core.Request{
		core.NewRequest(core.PredicateExists),
		core.NewRequest(core.PredicateExists,
			core.WithStates([]int{3, 1, 2}), core.WithTimes([]int{5, 7})),
		core.NewRequest(core.PredicateForAll,
			core.WithStates([]int{0}), core.WithTimeRange(2, 9),
			core.WithStrategy(core.StrategyObjectBased), core.WithParallelism(4)),
		core.NewRequest(core.PredicateForAll,
			core.WithStates([]int{0}), core.WithTimes([]int{1}),
			core.WithParallelism(0)), // "GOMAXPROCS" sentinel
		core.NewRequest(core.PredicateKTimes,
			core.WithStates([]int{1, 2}), core.WithTimes([]int{1, 2, 3}),
			core.WithStrategy(core.StrategyMonteCarlo),
			core.WithMonteCarloBudget(250, -17)),
		core.NewRequest(core.PredicateExists,
			core.WithStates([]int{4}), core.WithTimes([]int{4}),
			core.WithAutoPlan(), core.WithThreshold(0.25), core.WithCache(false)),
		core.NewRequest(core.PredicateExists,
			core.WithStates([]int{4}), core.WithTimes([]int{4}),
			core.WithTopK(7), core.WithFilterRefine(false), core.WithCache(true)),
		core.NewRequest(core.PredicateEventually,
			core.WithStates([]int{9}), core.WithHittingLimits(500, 1e-12)),
		core.NewRequest(core.PredicateExists,
			core.WithStates([]int{4}), core.WithTimes([]int{4}),
			core.WithThreshold(0)), // explicit zero threshold must survive
		core.NewExprRequest(core.And(
			core.ExistsAtom(core.WithStates([]int{1, 2}), core.WithTimeRange(5, 15)),
			core.Not(core.ForAllAtom(core.WithStates([]int{3, 4}), core.WithTimes([]int{0, 9}))),
		), core.WithThreshold(0.3)),
		core.NewExprRequest(core.Or(
			core.Then(
				core.ExistsAtom(core.WithStates([]int{7}), core.WithTimes([]int{2})),
				core.ExistsAtom(core.WithRegion(spatial.Circle{Center: spatial.Point{X: 1, Y: 2}, Radius: 3}, nil), core.WithTimes([]int{8})),
			),
			core.ForAllAtom(core.WithStates([]int{5}), core.WithTimes([]int{4})),
		), core.WithTopK(3), core.WithStrategy(core.StrategyObjectBased)),
	}
	for _, req := range reqs {
		roundTrip(t, req)
	}
}

func TestRequestRoundTripAggregate(t *testing.T) {
	reqs := []core.Request{
		core.NewAggRequest(core.PredicateExists, core.AggSpec{Kind: core.AggCount},
			core.WithStates([]int{2, 3}), core.WithTimeRange(1, 4)),
		core.NewAggRequest(core.PredicateExists, core.AggSpec{Kind: core.AggCount, MinCount: 3},
			core.WithStates([]int{2, 3}), core.WithTimeRange(1, 4),
			core.WithStrategy(core.StrategyQueryBased)),
		core.NewAggRequest(core.PredicateForAll, core.AggSpec{Kind: core.AggCount},
			core.WithStates([]int{0}), core.WithTimes([]int{3}),
			core.WithFilterRefine(false)),
		core.NewAggRequest(core.PredicateKTimes, core.AggSpec{Kind: core.AggCount, MinCount: 2},
			core.WithStates([]int{5}), core.WithTimes([]int{1, 3, 5}),
			core.WithStrategy(core.StrategyObjectBased), core.WithParallelism(2)),
		core.NewAggRequest(core.PredicateExists, core.AggSpec{Kind: core.AggOccupancy},
			core.WithStates([]int{7, 8, 9}), core.WithTimeRange(0, 10)),
		core.NewAggRequest(core.PredicateExists, core.AggSpec{Kind: core.AggCount},
			core.WithStates([]int{1}), core.WithTimes([]int{2}), core.WithAutoPlan()),
	}
	reqs = append(reqs, core.NewRequest(core.PredicateExpr,
		core.WithExpr(core.And(
			core.ExistsAtom(core.WithStates([]int{1}), core.WithTimes([]int{2})),
			core.Not(core.ForAllAtom(core.WithStates([]int{3}), core.WithTimes([]int{0, 2}))),
		)),
		core.WithAggregate(core.AggSpec{Kind: core.AggCount, MinCount: 1})))
	for _, req := range reqs {
		roundTrip(t, req)
	}
}

func TestDecodeRequestAggregateStrict(t *testing.T) {
	cases := map[string]string{
		"unknown kind":       `{"predicate":"exists","aggregate":{"kind":"median"}}`,
		"empty kind":         `{"predicate":"exists","aggregate":{}}`,
		"negative min_count": `{"predicate":"exists","aggregate":{"kind":"count","min_count":-1}}`,
		"unknown agg field":  `{"predicate":"exists","aggregate":{"kind":"count","max_count":4}}`,
	}
	for name, body := range cases {
		if _, err := DecodeRequest([]byte(body)); err == nil {
			t.Errorf("%s: decode accepted %s", name, body)
		}
	}
}

func TestResponseRoundTripAggregate(t *testing.T) {
	// Exact float bits must survive the trip: the conformance suite
	// compares PMFs across topologies with DeepEqual.
	counts := &core.Response{
		Results:  []core.Result{},
		Strategy: core.StrategyQueryBased,
		Agg: &core.AggResult{
			Kind:      core.AggCount,
			MinCount:  2,
			PMF:       []float64{0.1 + 0.2, 1e-17, math.Nextafter(0.5, 1), 0, 0.864},
			Mean:      1.25,
			Variance:  0.4375,
			ModeCount: 1,
			Tail:      math.Nextafter(0.25, 0),
		},
		Cache:  core.CacheReport{Hits: 2, Misses: 5},
		Filter: core.FilterReport{Candidates: 5, Pruned: 3, Refined: 2},
	}
	occ := &core.Response{
		Results:  []core.Result{},
		Strategy: core.StrategyObjectBased,
		Agg: &core.AggResult{
			Kind:     core.AggOccupancy,
			MinCount: 1,
			Profile: []core.AggPoint{
				{Time: 1, Mean: 0.5, Variance: 0.25, Tail: 0.5},
				{Time: 4, Mean: 0.1 + 0.2, Variance: 1e-17, Tail: math.Nextafter(0.3, 1)},
			},
		},
	}
	for _, resp := range []*core.Response{counts, occ} {
		w, err := FromResponse(resp)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(w)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeResponse(data)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, resp) {
			t.Fatalf("aggregate response round-trip mismatch:\n  sent %#v\n  got  %#v\n  wire %s", resp.Agg, got.Agg, data)
		}
	}
}

func TestDecodeResponseAggregateStrict(t *testing.T) {
	cases := map[string]string{
		"unknown kind":       `{"agg":{"kind":"median"}}`,
		"negative min_count": `{"agg":{"kind":"count","min_count":-1}}`,
		"negative pmf entry": `{"agg":{"kind":"count","pmf":[0.5,-0.1,0.6]}}`,
		"bad variance type":  `{"agg":{"kind":"count","pmf":[1],"variance":"x"}}`,
		"inf profile":        `{"agg":{"kind":"occupancy","profile":[{"time":1,"mean":1e999}]}}`,
	}
	for name, body := range cases {
		if _, err := DecodeResponse([]byte(body)); err == nil {
			t.Errorf("%s: decode accepted %s", name, body)
		}
	}
}

func TestDecodeRequestExprValidation(t *testing.T) {
	bad := []string{
		`{"predicate":"expr"}`,                                                             // expr predicate without a tree
		`{"predicate":"exists","expr":{"op":"atom"}}`,                                      // tree without the expr predicate
		`{"predicate":"expr","expr":{"op":"nand","operands":[]}}`,                          // unknown op
		`{"predicate":"expr","expr":{"op":"atom","operands":[{"op":"atom"}]}}`,             // atom with operands
		`{"predicate":"expr","expr":{"op":"not","states":[1],"operands":[{"op":"atom"}]}}`, // combinator with atom fields
	}
	for _, s := range bad {
		if _, err := DecodeRequest([]byte(s)); err == nil {
			t.Errorf("DecodeRequest(%s) succeeded", s)
		}
	}
}

func TestRequestRoundTripRegions(t *testing.T) {
	regions := []spatial.Region{
		spatial.NewRect(1, 2, 3, 4),
		spatial.Circle{Center: spatial.Point{X: -1, Y: 2.5}, Radius: 3},
		mustPolygon(t, []spatial.Point{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 2, Y: 3}}),
		spatial.Union{
			spatial.NewRect(0, 0, 1, 1),
			spatial.Circle{Center: spatial.Point{X: 5, Y: 5}, Radius: 1},
		},
		spatial.Difference{
			Base: spatial.NewRect(0, 0, 10, 10),
			Sub:  spatial.Circle{Center: spatial.Point{X: 5, Y: 5}, Radius: 2},
		},
	}
	for _, reg := range regions {
		req := core.NewRequest(core.PredicateExists,
			core.WithRegion(reg, nil), core.WithTimes([]int{3}))
		roundTrip(t, req)
	}
}

func mustPolygon(t *testing.T, pts []spatial.Point) spatial.Polygon {
	t.Helper()
	pg, err := spatial.NewPolygon(pts)
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func TestDecodeRequestStrict(t *testing.T) {
	cases := map[string]string{
		"unknown field":       `{"predicate":"exists","bogus":1}`,
		"unknown predicate":   `{"predicate":"sometimes"}`,
		"missing predicate":   `{}`,
		"unknown strategy":    `{"predicate":"exists","strategy":"quantum"}`,
		"trailing garbage":    `{"predicate":"exists"} {"x":1}`,
		"negative top_k":      `{"predicate":"exists","top_k":-3}`,
		"threshold above one": `{"predicate":"exists","threshold":1.5}`,
		"negative samples":    `{"predicate":"exists","monte_carlo":{"samples":-1,"seed":0}}`,
		"bad region type":     `{"predicate":"exists","region":{"type":"blob"}}`,
		"rect without max":    `{"predicate":"exists","region":{"type":"rect","min":[0,0]}}`,
		"negative radius":     `{"predicate":"exists","region":{"type":"circle","center":[0,0],"radius":-1}}`,
		"two-point polygon":   `{"predicate":"exists","region":{"type":"polygon","vertices":[[0,0],[1,1]]}}`,
		"not json":            `hello`,
		"wrong type":          `{"predicate":17}`,
	}
	for name, body := range cases {
		if _, err := DecodeRequest([]byte(body)); err == nil {
			t.Errorf("%s: decode accepted %s", name, body)
		}
	}
}

func TestDecodeRequestRegionDepthBounded(t *testing.T) {
	deep := strings.Repeat(`{"type":"difference","sub":{"type":"rect","min":[0,0],"max":[1,1]},"base":`, 80) +
		`{"type":"rect","min":[0,0],"max":[1,1]}` + strings.Repeat(`}`, 80)
	if _, err := DecodeRequest([]byte(`{"predicate":"exists","region":` + deep + `}`)); err == nil {
		t.Fatal("deeply nested region accepted")
	}
}

func TestResponseRoundTripExactFloats(t *testing.T) {
	probs := []float64{0, 1, 0.1 + 0.2, 1e-17, math.Nextafter(0.5, 1), 0.864}
	resp := &core.Response{Strategy: core.StrategyObjectBased}
	for i, p := range probs {
		resp.Results = append(resp.Results, core.Result{ObjectID: i, Prob: p, Dist: []float64{1 - p, p}})
	}
	resp.Plans = []core.CostEstimate{{Strategy: core.StrategyQueryBased, Sweeps: 2, Ops: 123.5, FilterOps: 7}}
	resp.Cache = core.CacheReport{Hits: 3, Misses: 1}
	resp.Filter = core.FilterReport{Candidates: 6, Pruned: 4, Refined: 2}

	w, err := FromResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Fatalf("response round-trip mismatch:\n  sent %#v\n  got  %#v", resp, got)
	}
}
