package ust

import (
	"io"

	"ust/internal/store"
)

// Persistence entry points: the compact, checksummed binary format that
// ustgen writes and ustserve loads, plus a verbose JSON interchange
// form. These wrap internal/store, which was previously unreachable
// from the public API.

// SaveDatabase writes db (default chain and all objects) in the binary
// store format.
func SaveDatabase(w io.Writer, db *Database) error { return store.SaveDatabase(w, db) }

// LoadDatabase reads a database written by SaveDatabase (integrity is
// CRC-verified before any parsing).
func LoadDatabase(r io.Reader) (*Database, error) { return store.LoadDatabase(r) }

// SaveChain writes a single motion model in the binary store format.
func SaveChain(w io.Writer, c *Chain) error { return store.SaveChain(w, c) }

// LoadChain reads a chain written by SaveChain.
func LoadChain(r io.Reader) (*Chain, error) { return store.LoadChain(r) }

// ExportDatabaseJSON writes db as an indented JSON document — verbose
// but diffable and readable by non-Go tooling.
func ExportDatabaseJSON(w io.Writer, db *Database) error { return store.ExportJSON(w, db) }

// ImportDatabaseJSON reads a document written by ExportDatabaseJSON.
func ImportDatabaseJSON(r io.Reader) (*Database, error) { return store.ImportJSON(r) }
