package ust

import (
	"io"

	"ust/internal/store"
)

// Persistence entry points: the compact, checksummed binary format that
// ustgen writes and ustserve loads, plus a verbose JSON interchange
// form. These wrap internal/store, which was previously unreachable
// from the public API.

// SaveDatabase writes db (default chain and all objects) in the binary
// store format — the columnar version 2, whose delta-encoded observation
// blocks both shrink the file and enable the zero-copy load path.
func SaveDatabase(w io.Writer, db *Database) error { return store.SaveDatabase(w, db) }

// SaveDatabaseV1 writes db in the legacy row-oriented version-1 format,
// for interchange with older readers.
func SaveDatabaseV1(w io.Writer, db *Database) error { return store.SaveDatabaseV1(w, db) }

// LoadDatabase reads a database written by SaveDatabase — either format
// version (integrity is CRC-verified before any parsing).
func LoadDatabase(r io.Reader) (*Database, error) { return store.LoadDatabase(r) }

// LoadDatabaseMapped decodes a complete in-memory store image. For
// version-2 images the observation probability column is adopted
// zero-copy when aligned: the returned database aliases data, which the
// caller must keep immutable for the database's lifetime. This is the
// fast path for callers that already hold the file bytes (an mmap, an
// HTTP upload body).
func LoadDatabaseMapped(data []byte) (*Database, error) { return store.LoadDatabaseMapped(data) }

// SaveChain writes a single motion model in the binary store format.
func SaveChain(w io.Writer, c *Chain) error { return store.SaveChain(w, c) }

// LoadChain reads a chain written by SaveChain.
func LoadChain(r io.Reader) (*Chain, error) { return store.LoadChain(r) }

// ExportDatabaseJSON writes db as an indented JSON document — verbose
// but diffable and readable by non-Go tooling.
func ExportDatabaseJSON(w io.Writer, db *Database) error { return store.ExportJSON(w, db) }

// ImportDatabaseJSON reads a document written by ExportDatabaseJSON.
func ImportDatabaseJSON(r io.Reader) (*Database, error) { return store.ImportJSON(r) }
