package query

import (
	"fmt"
	"strings"

	"ust/internal/core"
	"ust/internal/spatial"
)

// Format renders a request in the text query language, canonically:
// sorted deduped windows with contiguous runs collapsed, settings in a
// fixed order. Format(Parse(s)) is a fixed point. It fails on requests
// the language cannot express — geometric regions outside the
// rect/circle vocabulary (polygons, unions, differences travel over
// the structured wire form instead).
func Format(req core.Request) (string, error) {
	var b strings.Builder
	if spec, ok := req.AggregateHint(); ok {
		switch spec.Kind {
		case core.AggCount:
			b.WriteString("count(")
		case core.AggOccupancy:
			b.WriteString("occupancy(")
		default:
			return "", fmt.Errorf("query: aggregate kind %v has no text form", spec.Kind)
		}
	}
	switch req.Predicate {
	case core.PredicateExpr:
		x, ok := req.ExprHint()
		if !ok {
			return "", fmt.Errorf("query: expression request without an expression")
		}
		if err := checkExprRegions(x); err != nil {
			return "", err
		}
		b.WriteString(x.String())
	case core.PredicateExists, core.PredicateForAll, core.PredicateKTimes, core.PredicateEventually:
		b.WriteString(req.Predicate.String())
		b.WriteByte('(')
		if err := formatSpace(&b, req.States, req.Region); err != nil {
			return "", err
		}
		if req.Predicate != core.PredicateEventually || len(req.Times) > 0 {
			b.WriteString(" @ ")
			formatTimes(&b, req.Times)
		}
		b.WriteByte(')')
	default:
		return "", fmt.Errorf("query: unknown predicate %v", req.Predicate)
	}
	if _, ok := req.AggregateHint(); ok {
		b.WriteByte(')')
	}
	settings := formatSettings(req)
	if settings != "" {
		b.WriteString(" where ")
		b.WriteString(settings)
	}
	return b.String(), nil
}

func checkExprRegions(x core.Expr) error {
	if a, ok := x.Atom(); ok {
		return checkRegion(a.Region)
	}
	for _, kid := range x.Operands() {
		if err := checkExprRegions(kid); err != nil {
			return err
		}
	}
	return nil
}

func checkRegion(r spatial.Region) error {
	switch r.(type) {
	case nil, spatial.Rect, spatial.Circle:
		return nil
	default:
		return fmt.Errorf("query: region type %T has no text form; use the structured wire request", r)
	}
}

func formatSpace(b *strings.Builder, states []int, region spatial.Region) error {
	if err := checkRegion(region); err != nil {
		return err
	}
	switch {
	case region != nil && len(states) > 0:
		formatRegion(b, region)
		b.WriteByte('+')
		formatStates(b, states)
	case region != nil:
		formatRegion(b, region)
	default:
		formatStates(b, states)
	}
	return nil
}

func formatRegion(b *strings.Builder, r spatial.Region) {
	switch v := r.(type) {
	case spatial.Rect:
		fmt.Fprintf(b, "region(%g,%g,%g,%g)", v.MinX, v.MinY, v.MaxX, v.MaxY)
	case spatial.Circle:
		fmt.Fprintf(b, "circle(%g,%g,%g)", v.Center.X, v.Center.Y, v.Radius)
	}
}

func formatStates(b *strings.Builder, ids []int) {
	b.WriteString("states(")
	formatIntSet(b, normalize(ids))
	b.WriteByte(')')
}

func formatTimes(b *strings.Builder, times []int) {
	times = normalize(times)
	if n := len(times); n > 1 && times[n-1]-times[0] == n-1 {
		fmt.Fprintf(b, "[%d,%d]", times[0], times[n-1])
		return
	}
	b.WriteByte('{')
	formatIntSet(b, times)
	b.WriteByte('}')
}

// normalize sorts and dedupes, matching what NewQuery does at
// evaluation time — the canonical form the fixed point relies on.
func normalize(ids []int) []int {
	q := core.NewQuery(ids, nil)
	return q.States
}

// formatIntSet renders a sorted id set with contiguous runs of three or
// more collapsed to lo-hi ranges.
func formatIntSet(b *strings.Builder, ids []int) {
	for i := 0; i < len(ids); {
		j := i
		for j+1 < len(ids) && ids[j+1] == ids[j]+1 {
			j++
		}
		if i > 0 {
			b.WriteByte(',')
		}
		switch {
		case j == i:
			fmt.Fprintf(b, "%d", ids[i])
		case j == i+1:
			fmt.Fprintf(b, "%d,%d", ids[i], ids[j])
		default:
			fmt.Fprintf(b, "%d-%d", ids[i], ids[j])
		}
		i = j + 1
	}
}

// formatSettings emits the where-clause in canonical key order, only
// for non-default hints.
func formatSettings(req core.Request) string {
	var parts []string
	if spec, ok := req.AggregateHint(); ok && spec.MinCount > 0 {
		parts = append(parts, fmt.Sprintf("min=%d", spec.MinCount))
	}
	if tau, ok := req.ThresholdHint(); ok {
		parts = append(parts, fmt.Sprintf("tau=%g", tau))
	}
	if k := req.TopKHint(); k > 0 {
		parts = append(parts, fmt.Sprintf("top=%d", k))
	}
	if req.AutoPlanHint() {
		parts = append(parts, "strategy=auto")
	} else if s, ok := req.StrategyHint(); ok {
		name := "qb"
		switch s {
		case core.StrategyObjectBased:
			name = "ob"
		case core.StrategyMonteCarlo:
			name = "mc"
		}
		parts = append(parts, "strategy="+name)
	}
	if w := req.ParallelismHint(); w != 0 {
		if w < 0 {
			w = 0 // "all cores" round-trips as workers=0
		}
		parts = append(parts, fmt.Sprintf("workers=%d", w))
	}
	if samples, seed, ok := req.MonteCarloHint(); ok {
		if samples > 0 {
			parts = append(parts, fmt.Sprintf("samples=%d", samples))
		}
		parts = append(parts, fmt.Sprintf("seed=%d", seed))
	}
	if enabled, ok := req.CacheHint(); ok {
		parts = append(parts, "cache="+onOff(enabled))
	}
	if enabled, ok := req.FilterRefineHint(); ok {
		parts = append(parts, "filter="+onOff(enabled))
	}
	if steps, tol := req.HittingHint(); steps != 0 || tol != 0 {
		if steps != 0 {
			parts = append(parts, fmt.Sprintf("steps=%d", steps))
		}
		if tol != 0 {
			parts = append(parts, fmt.Sprintf("tol=%g", tol))
		}
	}
	return strings.Join(parts, " ")
}

func onOff(v bool) string {
	if v {
		return "on"
	}
	return "off"
}
