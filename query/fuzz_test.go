package query

import "testing"

// FuzzParseQuery pins the parser's two safety properties: no input can
// panic it, and every accepted input round-trips through Format as a
// fixed point (Format∘Parse is idempotent) — the canonical form is
// stable and stays accepted.
func FuzzParseQuery(f *testing.F) {
	for _, seed := range []string{
		"exists(states(100-120) @ [20,25]) where tau=0.3 strategy=auto",
		"exists(region(10,20,0,30) @ [5,15]) and not forall(states(3,4) @ [0,9])",
		"exists(states(7) @ [5,10]) then exists(states(9) @ [20,30]) where top=5",
		"eventually(states(40,41)) where steps=500 tol=1e-9",
		"ktimes(states(5) @ {1,3,5}) where strategy=ob workers=4",
		"not (exists(circle(1,2,3) @ {1}) or forall(states() @ {}))",
		"exists(states(1)+region(0,0,1,1) @ {2}) where samples=10 seed=3 cache=off filter=on",
		"count(exists(states(2,3) @ [1,4])) where min=3 strategy=qb",
		"count(exists(states(1) @ [1,2]) and not forall(states(3) @ [0,2]))",
		"count(ktimes(states(5) @ {1,3,5})) where workers=2",
		"occupancy(exists(states(7-9) @ [0,10])) where min=2 filter=off",
		"count(forall(region(0,0,5,5) @ {3}))",
		"e(", "where", "exists(states(1) @ [1,2]) where tau=..5",
		"count(", "occupancy(ktimes(states(1) @ {1}))",
		"exists(states(1) @ [1,2]) where min=1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		req, err := Parse(input)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		canonical, err := Format(req)
		if err != nil {
			// Parse never produces regions outside the text vocabulary,
			// so every parsed request must format.
			t.Fatalf("Format(Parse(%q)): %v", input, err)
		}
		req2, err := Parse(canonical)
		if err != nil {
			t.Fatalf("canonical form rejected: %q -> %q: %v", input, canonical, err)
		}
		again, err := Format(req2)
		if err != nil {
			t.Fatalf("re-format failed: %q: %v", canonical, err)
		}
		if again != canonical {
			t.Fatalf("not a fixed point:\n input: %q\n first: %q\nsecond: %q", input, canonical, again)
		}
	})
}
