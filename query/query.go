// Package query implements the compact text query language of the ust
// engine: a one-line, human-writable form of a core.Request, accepted
// everywhere a structured request is — `ustquery -q`, the HTTP API's
// "query" envelope field, and Service.Subscribe via ParseQuery in the
// facade.
//
//	exists(states(100-120) @ [20,25]) where tau=0.3 strategy=auto
//	exists(region(10,20,0,30) @ [5,15]) and not forall(states(3,4) @ [0,9])
//	exists(states(7) @ [5,10]) then exists(states(9) @ [20,30]) where top=5
//	eventually(states(40,41)) where steps=500 tol=1e-9
//
// A single atom parses to the corresponding atomic predicate request;
// any use of and/or/not/then parses to a compound-expression request
// (evaluated exactly, correlations included — see ust.Expr). The
// ktimes and eventually predicates are not boolean and are only valid
// as the whole query. Format is the inverse of Parse and emits a
// canonical form: Format(Parse(s)) is a fixed point, which the parser
// fuzz test pins.
//
// See README.md in this directory for the full grammar.
package query

import (
	"fmt"
	"strconv"
	"strings"

	"ust/internal/core"
	"ust/internal/spatial"
)

// ParseError is a syntax error with its byte offset in the query
// string. Column is 1-based; CLI front ends print a caret under it.
type ParseError struct {
	Pos int // 0-based byte offset into the query string
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("column %d: %s", e.Pos+1, e.Msg)
}

// Parse compiles a text query into a core.Request. Geometric regions
// are left unresolved (nil resolver); the serving layer attaches its
// dataset's spatial index, exactly as with wire-decoded requests.
func Parse(input string) (core.Request, error) {
	p := &parser{}
	if err := p.lex(input); err != nil {
		return core.Request{}, err
	}
	aggPos, err := p.parseAggHead()
	if err != nil {
		return core.Request{}, err
	}
	root, err := p.parseExpr()
	if err != nil {
		return core.Request{}, err
	}
	if p.agg != nil {
		if _, err := p.expect(")"); err != nil {
			return core.Request{}, err
		}
		if p.agg.Kind == core.AggOccupancy && (root.op != core.ExprLeaf || root.pred != "exists") {
			return core.Request{}, p.errAt(aggPos, "occupancy(...) takes a single exists(...) atom")
		}
	}
	opts, err := p.parseSettings()
	if err != nil {
		return core.Request{}, err
	}
	if tok := p.peek(); tok.kind != tokEOF {
		return core.Request{}, p.errAt(tok.pos, "unexpected %q", tok.text)
	}
	req, err := root.toRequest()
	if err != nil {
		return core.Request{}, err
	}
	if p.agg != nil {
		opts = append(opts, core.WithAggregate(*p.agg))
	}
	return req.With(opts...), nil
}

// parseAggHead consumes a leading count( / occupancy( aggregate wrapper,
// recording the spec on the parser; the matching ")" is consumed by
// Parse after the inner query. Returns the wrapper's position.
func (p *parser) parseAggHead() (int, error) {
	t := p.peek()
	if t.kind != tokIdent || (t.text != "count" && t.text != "occupancy") {
		return 0, nil
	}
	p.ti++
	if _, err := p.expect("("); err != nil {
		return 0, err
	}
	kind := core.AggCount
	if t.text == "occupancy" {
		kind = core.AggOccupancy
	}
	p.agg = &core.AggSpec{Kind: kind}
	return t.pos, nil
}

// --- AST -------------------------------------------------------------------

// node is the parse tree: leaves carry a predicate name and window,
// inner nodes a combinator.
type node struct {
	op     core.ExprOp
	pred   string // leaf only: exists | forall | ktimes | eventually
	states []int
	region spatial.Region
	times  []int
	kids   []*node
	pos    int
}

// toRequest converts the root: a lone atom becomes an atomic request,
// anything else a compound-expression request.
func (n *node) toRequest() (core.Request, error) {
	if n.op == core.ExprLeaf {
		var pred core.Predicate
		switch n.pred {
		case "exists":
			pred = core.PredicateExists
		case "forall":
			pred = core.PredicateForAll
		case "ktimes":
			pred = core.PredicateKTimes
		case "eventually":
			pred = core.PredicateEventually
		}
		opts := []core.RequestOption{core.WithStates(n.states), core.WithTimes(n.times)}
		if n.region != nil {
			opts = append(opts, core.WithRegion(n.region, nil))
		}
		return core.NewRequest(pred, opts...), nil
	}
	x, err := n.toExpr()
	if err != nil {
		return core.Request{}, err
	}
	return core.NewExprRequest(x), nil
}

func (n *node) toExpr() (core.Expr, error) {
	if n.op == core.ExprLeaf {
		if n.pred != "exists" && n.pred != "forall" {
			return core.Expr{}, &ParseError{Pos: n.pos, Msg: fmt.Sprintf("%s is not boolean and cannot be combined; only exists/forall atoms may appear in compound expressions", n.pred)}
		}
		return core.NewAtom(core.ExprAtom{
			ForAll: n.pred == "forall",
			States: n.states,
			Times:  n.times,
			Region: n.region,
		}), nil
	}
	kids := make([]core.Expr, len(n.kids))
	for i, kid := range n.kids {
		x, err := kid.toExpr()
		if err != nil {
			return core.Expr{}, err
		}
		kids[i] = x
	}
	switch n.op {
	case core.ExprAnd:
		return core.And(kids...), nil
	case core.ExprOr:
		return core.Or(kids...), nil
	case core.ExprThen:
		return core.Then(kids...), nil
	default:
		return core.Not(kids[0]), nil
	}
}

// --- lexer -----------------------------------------------------------------

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokPunct
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type parser struct {
	toks []token
	ti   int
	// agg is the aggregate wrapper (count/occupancy), when present; its
	// MinCount is filled by the where-clause "min" setting.
	agg *core.AggSpec
}

func (p *parser) errAt(pos int, format string, args ...any) error {
	return &ParseError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func isIdentRune(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (p *parser) lex(in string) error {
	i := 0
	for i < len(in) {
		c := in[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdentRune(c):
			start := i
			for i < len(in) && (isIdentRune(in[i]) || isDigit(in[i])) {
				i++
			}
			p.toks = append(p.toks, token{kind: tokIdent, text: strings.ToLower(in[start:i]), pos: start})
		case isDigit(c) || c == '.' && i+1 < len(in) && isDigit(in[i+1]):
			start := i
			for i < len(in) && (isDigit(in[i]) || in[i] == '.') {
				i++
			}
			// Exponent: 1e9, 2.5e-3. The sign belongs to the number.
			if i < len(in) && (in[i] == 'e' || in[i] == 'E') {
				j := i + 1
				if j < len(in) && (in[j] == '+' || in[j] == '-') {
					j++
				}
				if j < len(in) && isDigit(in[j]) {
					i = j
					for i < len(in) && isDigit(in[i]) {
						i++
					}
				}
			}
			p.toks = append(p.toks, token{kind: tokNumber, text: in[start:i], pos: start})
		case strings.IndexByte("()[]{},@+-=", c) >= 0:
			p.toks = append(p.toks, token{kind: tokPunct, text: string(c), pos: i})
			i++
		default:
			return &ParseError{Pos: i, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	p.toks = append(p.toks, token{kind: tokEOF, text: "end of query", pos: len(in)})
	return nil
}

func (p *parser) peek() token { return p.toks[p.ti] }

func (p *parser) next() token {
	t := p.toks[p.ti]
	if t.kind != tokEOF {
		p.ti++
	}
	return t
}

func (p *parser) accept(punct string) bool {
	if t := p.peek(); t.kind == tokPunct && t.text == punct {
		p.ti++
		return true
	}
	return false
}

func (p *parser) acceptIdent(word string) bool {
	if t := p.peek(); t.kind == tokIdent && t.text == word {
		p.ti++
		return true
	}
	return false
}

func (p *parser) expect(punct string) (token, error) {
	t := p.next()
	if t.kind != tokPunct || t.text != punct {
		return t, p.errAt(t.pos, "expected %q, got %q", punct, t.text)
	}
	return t, nil
}

func (p *parser) expectInt() (int, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, p.errAt(t.pos, "expected a number, got %q", t.text)
	}
	v, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errAt(t.pos, "expected an integer, got %q", t.text)
	}
	if v < 0 {
		return 0, p.errAt(t.pos, "negative value %d", v)
	}
	return v, nil
}

// expectFloat parses a number with an optional leading minus (region
// coordinates may be negative).
func (p *parser) expectFloat() (float64, error) {
	neg := p.accept("-")
	t := p.next()
	if t.kind != tokNumber {
		return 0, p.errAt(t.pos, "expected a number, got %q", t.text)
	}
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, p.errAt(t.pos, "bad number %q", t.text)
	}
	if neg {
		v = -v
	}
	return v, nil
}

// --- grammar ---------------------------------------------------------------

// parseExpr: or-expression (lowest precedence).
func (p *parser) parseExpr() (*node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []*node{left}
	pos := left.pos
	for p.acceptIdent("or") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &node{op: core.ExprOr, kids: kids, pos: pos}, nil
}

func (p *parser) parseAnd() (*node, error) {
	left, err := p.parseThen()
	if err != nil {
		return nil, err
	}
	kids := []*node{left}
	for p.acceptIdent("and") {
		right, err := p.parseThen()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &node{op: core.ExprAnd, kids: kids, pos: left.pos}, nil
}

func (p *parser) parseThen() (*node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []*node{left}
	for p.acceptIdent("then") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &node{op: core.ExprThen, kids: kids, pos: left.pos}, nil
}

func (p *parser) parseUnary() (*node, error) {
	if t := p.peek(); t.kind == tokIdent && t.text == "not" {
		p.ti++
		kid, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &node{op: core.ExprNot, kids: []*node{kid}, pos: t.pos}, nil
	}
	if p.accept("(") {
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (*node, error) {
	t := p.next()
	if t.kind != tokIdent {
		return nil, p.errAt(t.pos, "expected a predicate (exists/forall/ktimes/eventually), got %q", t.text)
	}
	switch t.text {
	case "exists", "forall", "ktimes", "eventually":
	default:
		return nil, p.errAt(t.pos, "unknown predicate %q", t.text)
	}
	n := &node{op: core.ExprLeaf, pred: t.text, pos: t.pos}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	if err := p.parseSpace(n); err != nil {
		return nil, err
	}
	if p.accept("@") {
		times, err := p.parseTimes()
		if err != nil {
			return nil, err
		}
		n.times = times
	} else if n.pred != "eventually" {
		// The other predicates need a temporal window; an empty one is
		// expressible explicitly as "@ {}".
		if tok := p.peek(); tok.kind == tokPunct && tok.text == ")" {
			return nil, p.errAt(tok.pos, "%s needs a time window: %s(... @ [lo,hi])", n.pred, n.pred)
		}
	}
	if _, err := p.expect(")"); err != nil {
		return nil, err
	}
	return n, nil
}

// parseSpace: one or more '+'-joined spatial terms (raw states, a rect,
// a circle).
func (p *parser) parseSpace(n *node) error {
	for {
		t := p.next()
		if t.kind != tokIdent {
			return p.errAt(t.pos, "expected states(...), region(...) or circle(...), got %q", t.text)
		}
		switch t.text {
		case "states":
			if _, err := p.expect("("); err != nil {
				return err
			}
			ids, err := p.parseIntSet(")")
			if err != nil {
				return err
			}
			n.states = append(n.states, ids...)
		case "region":
			if n.region != nil {
				return p.errAt(t.pos, "at most one geometric region per atom")
			}
			if _, err := p.expect("("); err != nil {
				return err
			}
			var c [4]float64
			for i := range c {
				if i > 0 {
					if _, err := p.expect(","); err != nil {
						return err
					}
				}
				v, err := p.expectFloat()
				if err != nil {
					return err
				}
				c[i] = v
			}
			if _, err := p.expect(")"); err != nil {
				return err
			}
			n.region = spatial.NewRect(c[0], c[1], c[2], c[3])
		case "circle":
			if n.region != nil {
				return p.errAt(t.pos, "at most one geometric region per atom")
			}
			if _, err := p.expect("("); err != nil {
				return err
			}
			var c [3]float64
			for i := range c {
				if i > 0 {
					if _, err := p.expect(","); err != nil {
						return err
					}
				}
				v, err := p.expectFloat()
				if err != nil {
					return err
				}
				c[i] = v
			}
			if _, err := p.expect(")"); err != nil {
				return err
			}
			if c[2] < 0 {
				return p.errAt(t.pos, "negative circle radius %g", c[2])
			}
			n.region = spatial.Circle{Center: spatial.Point{X: c[0], Y: c[1]}, Radius: c[2]}
		default:
			return p.errAt(t.pos, "expected states(...), region(...) or circle(...), got %q", t.text)
		}
		if !p.accept("+") {
			return nil
		}
	}
}

// parseTimes: "[lo,hi]" interval sugar or "{a,b,c-d}" explicit set.
func (p *parser) parseTimes() ([]int, error) {
	if p.accept("[") {
		lo, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(","); err != nil {
			return nil, err
		}
		hiTok := p.peek()
		hi, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		if hi < lo {
			return nil, p.errAt(hiTok.pos, "inverted interval [%d,%d]", lo, hi)
		}
		if _, err := p.expect("]"); err != nil {
			return nil, err
		}
		return core.Interval(lo, hi), nil
	}
	if p.accept("{") {
		return p.parseIntSet("}")
	}
	t := p.peek()
	return nil, p.errAt(t.pos, "expected a time window: [lo,hi] or {t1,t2,...}, got %q", t.text)
}

// parseIntSet: comma-separated ints and lo-hi ranges up to the closing
// token (consumed). The empty set is allowed.
func (p *parser) parseIntSet(closing string) ([]int, error) {
	var out []int
	if p.accept(closing) {
		return out, nil
	}
	for {
		lo, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		if p.accept("-") {
			hiTok := p.peek()
			hi, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			if hi < lo {
				return nil, p.errAt(hiTok.pos, "inverted range %d-%d", lo, hi)
			}
			out = append(out, core.Interval(lo, hi)...)
		} else {
			out = append(out, lo)
		}
		if p.accept(closing) {
			return out, nil
		}
		if _, err := p.expect(","); err != nil {
			return nil, err
		}
	}
}

// --- where clause ----------------------------------------------------------

func (p *parser) parseSettings() ([]core.RequestOption, error) {
	if !p.acceptIdent("where") {
		return nil, nil
	}
	var opts []core.RequestOption
	var mcSamples int
	var mcSeed int64
	haveMC := false
	for {
		t := p.peek()
		if t.kind != tokIdent {
			break
		}
		p.ti++
		if _, err := p.expect("="); err != nil {
			return nil, err
		}
		switch t.text {
		case "tau":
			v, err := p.expectFloat()
			if err != nil {
				return nil, err
			}
			opts = append(opts, core.WithThreshold(v))
		case "top":
			v, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			opts = append(opts, core.WithTopK(v))
		case "strategy":
			s := p.next()
			switch s.text {
			case "auto":
				opts = append(opts, core.WithAutoPlan())
			case "qb":
				opts = append(opts, core.WithStrategy(core.StrategyQueryBased))
			case "ob":
				opts = append(opts, core.WithStrategy(core.StrategyObjectBased))
			case "mc":
				opts = append(opts, core.WithStrategy(core.StrategyMonteCarlo))
			default:
				return nil, p.errAt(s.pos, "unknown strategy %q (auto|qb|ob|mc)", s.text)
			}
		case "workers":
			v, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			opts = append(opts, core.WithParallelism(v))
		case "samples":
			v, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			mcSamples, haveMC = v, true
		case "seed":
			v, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			mcSeed, haveMC = int64(v), true
		case "cache":
			v, err := p.parseOnOff(t.text)
			if err != nil {
				return nil, err
			}
			opts = append(opts, core.WithCache(v))
		case "filter":
			v, err := p.parseOnOff(t.text)
			if err != nil {
				return nil, err
			}
			opts = append(opts, core.WithFilterRefine(v))
		case "steps":
			v, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			opts = append(opts, hittingSteps(v))
		case "tol":
			v, err := p.expectFloat()
			if err != nil {
				return nil, err
			}
			opts = append(opts, hittingTol(v))
		case "min":
			if p.agg == nil {
				return nil, p.errAt(t.pos, "min applies to count(...)/occupancy(...) queries only")
			}
			v, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			p.agg.MinCount = v
		default:
			return nil, p.errAt(t.pos, "unknown setting %q (min, tau, top, strategy, workers, samples, seed, cache, filter, steps, tol)", t.text)
		}
		p.accept(",")
	}
	if haveMC {
		opts = append(opts, core.WithMonteCarloBudget(mcSamples, mcSeed))
	}
	return opts, nil
}

func (p *parser) parseOnOff(key string) (bool, error) {
	t := p.next()
	switch t.text {
	case "on", "true", "1":
		return true, nil
	case "off", "false", "0":
		return false, nil
	default:
		return false, p.errAt(t.pos, "%s wants on/off, got %q", key, t.text)
	}
}

// hittingSteps/hittingTol compose into one WithHittingLimits without
// clobbering the other half.
func hittingSteps(v int) core.RequestOption {
	return func(r *core.Request) {
		_, tol := r.HittingHint()
		core.WithHittingLimits(v, tol)(r)
	}
}

func hittingTol(v float64) core.RequestOption {
	return func(r *core.Request) {
		steps, _ := r.HittingHint()
		core.WithHittingLimits(steps, v)(r)
	}
}
