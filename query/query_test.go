package query

import (
	"context"
	"strings"
	"testing"

	"ust/internal/core"
	"ust/internal/markov"
	"ust/internal/spatial"
)

// mustParse fails the test on a parse error.
func mustParse(t *testing.T, s string) core.Request {
	t.Helper()
	req, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return req
}

func TestParseAtomicRequests(t *testing.T) {
	req := mustParse(t, "exists(states(100-102,110) @ [20,22]) where tau=0.3 strategy=auto")
	if req.Predicate != core.PredicateExists {
		t.Fatalf("predicate %v", req.Predicate)
	}
	if want := []int{100, 101, 102, 110}; len(req.States) != 4 || req.States[3] != want[3] {
		t.Fatalf("states %v", req.States)
	}
	if len(req.Times) != 3 || req.Times[0] != 20 || req.Times[2] != 22 {
		t.Fatalf("times %v", req.Times)
	}
	if tau, ok := req.ThresholdHint(); !ok || tau != 0.3 {
		t.Fatalf("threshold %v %v", tau, ok)
	}
	if !req.AutoPlanHint() {
		t.Fatal("auto-plan not set")
	}

	req = mustParse(t, "KTIMES(states(5) @ {1,3,5}) where strategy=ob workers=4")
	if req.Predicate != core.PredicateKTimes {
		t.Fatalf("predicate %v", req.Predicate)
	}
	if s, ok := req.StrategyHint(); !ok || s != core.StrategyObjectBased {
		t.Fatalf("strategy %v %v", s, ok)
	}
	if req.ParallelismHint() != 4 {
		t.Fatalf("workers %d", req.ParallelismHint())
	}

	req = mustParse(t, "eventually(states(40,41)) where steps=500 tol=1e-9")
	if req.Predicate != core.PredicateEventually {
		t.Fatalf("predicate %v", req.Predicate)
	}
	if steps, tol := req.HittingHint(); steps != 500 || tol != 1e-9 {
		t.Fatalf("hitting %d %g", steps, tol)
	}

	req = mustParse(t, "forall(region(0,0,10,10)+states(3) @ {7}) where samples=200 seed=9 cache=off filter=off")
	if req.Region == nil {
		t.Fatal("no region")
	}
	if _, ok := req.Region.(spatial.Rect); !ok {
		t.Fatalf("region %T", req.Region)
	}
	if samples, seed, ok := req.MonteCarloHint(); !ok || samples != 200 || seed != 9 {
		t.Fatalf("mc %d %d %v", samples, seed, ok)
	}
	if on, ok := req.CacheHint(); !ok || on {
		t.Fatal("cache hint")
	}
	if on, ok := req.FilterRefineHint(); !ok || on {
		t.Fatal("filter hint")
	}

	req = mustParse(t, "exists(circle(5,5,2.5) @ [1,3])")
	if _, ok := req.Region.(spatial.Circle); !ok {
		t.Fatalf("region %T", req.Region)
	}
}

func TestParseCompound(t *testing.T) {
	req := mustParse(t, "exists(states(1,2) @ [5,15]) and not forall(states(3,4) @ [0,9]) where top=5")
	if req.Predicate != core.PredicateExpr {
		t.Fatalf("predicate %v", req.Predicate)
	}
	x, ok := req.ExprHint()
	if !ok || x.Op() != core.ExprAnd {
		t.Fatalf("expr %v %v", x.Op(), ok)
	}
	kids := x.Operands()
	if len(kids) != 2 || kids[1].Op() != core.ExprNot {
		t.Fatalf("operands %d", len(kids))
	}
	if req.TopKHint() != 5 {
		t.Fatalf("top %d", req.TopKHint())
	}

	// Precedence: or < and < then < not.
	req = mustParse(t, "exists(states(1) @ {1}) or exists(states(2) @ {1}) and exists(states(3) @ {1}) then exists(states(4) @ {2})")
	x, _ = req.ExprHint()
	if x.Op() != core.ExprOr {
		t.Fatalf("root %v", x.Op())
	}
	right := x.Operands()[1]
	if right.Op() != core.ExprAnd {
		t.Fatalf("right of or: %v", right.Op())
	}
	if right.Operands()[1].Op() != core.ExprThen {
		t.Fatalf("right of and: %v", right.Operands()[1].Op())
	}

	// Parentheses override precedence.
	req = mustParse(t, "(exists(states(1) @ {1}) or exists(states(2) @ {1})) and exists(states(3) @ {1})")
	x, _ = req.ExprHint()
	if x.Op() != core.ExprAnd {
		t.Fatalf("root %v", x.Op())
	}
}

func TestParseAggregate(t *testing.T) {
	req := mustParse(t, "count(exists(states(2,3) @ [1,4])) where min=3 strategy=qb")
	spec, ok := req.AggregateHint()
	if !ok || spec.Kind != core.AggCount || spec.MinCount != 3 {
		t.Fatalf("aggregate hint %+v %v", spec, ok)
	}
	if req.Predicate != core.PredicateExists {
		t.Fatalf("predicate %v", req.Predicate)
	}
	if s, sok := req.StrategyHint(); !sok || s != core.StrategyQueryBased {
		t.Fatalf("strategy %v %v", s, sok)
	}

	// A compound body turns into an expr request with the aggregate riding on top.
	req = mustParse(t, "count(exists(states(1) @ [1,2]) and not forall(states(3) @ [0,2]))")
	if req.Predicate != core.PredicateExpr {
		t.Fatalf("predicate %v", req.Predicate)
	}
	if spec, ok = req.AggregateHint(); !ok || spec.Kind != core.AggCount || spec.MinCount != 0 {
		t.Fatalf("aggregate hint %+v %v", spec, ok)
	}

	req = mustParse(t, "occupancy(exists(states(7-9) @ [0,10])) where min=2")
	if spec, ok = req.AggregateHint(); !ok || spec.Kind != core.AggOccupancy || spec.MinCount != 2 {
		t.Fatalf("aggregate hint %+v %v", spec, ok)
	}

	req = mustParse(t, "count(ktimes(states(5) @ {1,3,5})) where workers=2")
	if req.Predicate != core.PredicateKTimes {
		t.Fatalf("predicate %v", req.Predicate)
	}
}

func TestParseErrorsCarryPositions(t *testing.T) {
	cases := []struct {
		in     string
		substr string
	}{
		{"exsts(states(1) @ [1,2])", "unknown predicate"},
		{"exists(states(1))", "needs a time window"},
		{"exists(states(1) @ [5,2])", "inverted interval"},
		{"exists(states(9-2) @ [1,2])", "inverted range"},
		{"exists(states(1) @ [1,2]) trailing", "unexpected"},
		{"exists(states(1) @ [1,2]) where tau=nope", "expected a number"},
		{"exists(states(1) @ [1,2]) where frobnicate=3", "unknown setting"},
		{"ktimes(states(1) @ [1,2]) and exists(states(2) @ [1,2])", "cannot be combined"},
		{"eventually(states(1)) or exists(states(2) @ [1,2])", "cannot be combined"},
		{"exists(region(1,2,3) @ [1,2])", "expected"},
		{"exists(states(1) @ [1,2]) where strategy=warp", "unknown strategy"},
		{"", "expected a predicate"},
		{"exists(states(1) @ [1,2]) ??", "unexpected character"},
		{"occupancy(ktimes(states(1) @ {1}))", "single exists"},
		{"occupancy(exists(states(1) @ {1}) and exists(states(2) @ {1}))", "single exists"},
		{"exists(states(1) @ [1,2]) where min=1", "min applies to count"},
		{"count(exists(states(1) @ [1,2])) where min=-2", "expected a number"},
		{"count(exists(states(1) @ [1,2])", "expected"},
		{"count(", "expected a predicate"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded", tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("Parse(%q) = %v, want substring %q", tc.in, err, tc.substr)
		}
		var pe *ParseError
		if !asParseError(err, &pe) {
			t.Errorf("Parse(%q) error is %T, not *ParseError", tc.in, err)
			continue
		}
		if pe.Pos < 0 || pe.Pos > len(tc.in) {
			t.Errorf("Parse(%q): position %d out of range", tc.in, pe.Pos)
		}
	}
}

func asParseError(err error, out **ParseError) bool {
	pe, ok := err.(*ParseError)
	if ok {
		*out = pe
	}
	return ok
}

func TestFormatRoundTrip(t *testing.T) {
	cases := []string{
		"exists(states(100-120) @ [20,25])",
		"exists(states(1-3,7) @ [5,15]) and not forall(states(3,4) @ {0,2,9})",
		"exists(states(7) @ [5,10]) then exists(states(9) @ [20,30]) where top=5",
		"eventually(states(40,41)) where steps=500 tol=1e-09",
		"ktimes(states(5) @ {1,3,5}) where strategy=ob",
		"forall(region(0,0,10,10) @ {7}) where tau=0.25 strategy=mc samples=200 seed=9 cache=off filter=off",
		"exists(circle(5,5,2.5) @ [1,3]) where workers=0",
		"not (exists(states(1) @ [1,2]) or forall(states(2) @ [1,2]))",
		"exists(states() @ {})",
		"count(exists(states(2,3) @ [1,4])) where min=3 strategy=qb",
		"count(exists(states(1) @ [1,2]) and not forall(states(3) @ [0,2]))",
		"occupancy(exists(states(7-9) @ [0,10])) where min=2 filter=off",
		"count(ktimes(states(5) @ {1,3,5})) where workers=2",
	}
	for _, in := range cases {
		req := mustParse(t, in)
		out, err := Format(req)
		if err != nil {
			t.Errorf("Format(Parse(%q)): %v", in, err)
			continue
		}
		if out != in {
			t.Errorf("Format(Parse(%q)) = %q, not canonical", in, out)
		}
		// And the canonical form is a fixed point.
		again, err := Format(mustParse(t, out))
		if err != nil || again != out {
			t.Errorf("fixed point broken: %q -> %q (%v)", out, again, err)
		}
	}
}

// TestFormatRejectsInexpressible pins the failure mode for regions the
// language cannot carry.
func TestFormatRejectsInexpressible(t *testing.T) {
	pg, err := spatial.NewPolygon([]spatial.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}})
	if err != nil {
		t.Fatal(err)
	}
	req := core.NewRequest(core.PredicateExists,
		core.WithRegion(pg, nil), core.WithTimes([]int{1}))
	if _, err := Format(req); err == nil {
		t.Fatal("polygon region formatted")
	}
}

// TestParsedQueryEvaluates runs a parsed compound query end-to-end and
// checks it matches the equivalent hand-built request.
func TestParsedQueryEvaluates(t *testing.T) {
	chain, err := markov.FromDense([][]float64{
		{0, 0, 1},
		{0.6, 0, 0.4},
		{0, 0.8, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDatabase(chain)
	if err := db.AddSimple(1, markov.PointDistribution(3, 2)); err != nil {
		t.Fatal(err)
	}
	engine := core.NewEngine(db, core.Options{})
	ctx := context.Background()

	parsed := mustParse(t, "exists(states(0) @ [2,3]) and not forall(states(1,2) @ [1,2])")
	built := core.NewExprRequest(core.And(
		core.ExistsAtom(core.WithStates([]int{0}), core.WithTimeRange(2, 3)),
		core.Not(core.ForAllAtom(core.WithStates([]int{1, 2}), core.WithTimeRange(1, 2))),
	))
	respParsed, err := engine.Evaluate(ctx, parsed)
	if err != nil {
		t.Fatal(err)
	}
	respBuilt, err := engine.Evaluate(ctx, built)
	if err != nil {
		t.Fatal(err)
	}
	if respParsed.Results[0].Prob != respBuilt.Results[0].Prob {
		t.Fatalf("parsed %v != built %v", respParsed.Results[0].Prob, respBuilt.Results[0].Prob)
	}
}
