package ust_test

import (
	"context"
	"errors"
	"math"
	"testing"

	"ust"
)

// Tests for the unified Request/Evaluate surface through the public
// facade: the paper's running example expressed as Requests, region
// resolution via the R-tree, streaming, and cancellation.

func TestEvaluateRunningExample(t *testing.T) {
	_, engine := paperSetup(t)
	ctx := context.Background()
	window := []ust.RequestOption{
		ust.WithStates([]int{0, 1}),
		ust.WithTimes([]int{2, 3}),
	}

	exists, err := engine.Evaluate(ctx, ust.NewRequest(ust.PredicateExists, window...))
	if err != nil {
		t.Fatalf("Evaluate(exists): %v", err)
	}
	if math.Abs(exists.Results[0].Prob-0.864) > 1e-12 {
		t.Errorf("P∃ = %v, want 0.864", exists.Results[0].Prob)
	}
	if exists.Strategy != ust.StrategyQueryBased {
		t.Errorf("default strategy = %v, want query-based", exists.Strategy)
	}

	forAll, err := engine.Evaluate(ctx, ust.NewRequest(ust.PredicateForAll, window...))
	if err != nil {
		t.Fatalf("Evaluate(forall): %v", err)
	}
	if math.Abs(forAll.Results[0].Prob-0.192) > 1e-12 {
		t.Errorf("P∀ = %v, want 0.192", forAll.Results[0].Prob)
	}

	kt, err := engine.Evaluate(ctx, ust.NewRequest(ust.PredicateKTimes, window...))
	if err != nil {
		t.Fatalf("Evaluate(ktimes): %v", err)
	}
	want := []float64{0.136, 0.672, 0.192}
	for k, p := range kt.Results[0].Dist {
		if math.Abs(p-want[k]) > 1e-12 {
			t.Errorf("P(k=%d) = %v, want %v", k, p, want[k])
		}
	}
}

func TestEvaluateWithRegionOverGrid(t *testing.T) {
	grid := ust.NewGrid(10, 10)
	n := grid.NumStates()
	rows := make([][]float64, n)
	for id := 0; id < n; id++ {
		rows[id] = make([]float64, n)
		nbrs := grid.Neighbors4(id)
		rows[id][id] = 0.5
		for _, nb := range nbrs {
			rows[id][nb] = 0.5 / float64(len(nbrs))
		}
	}
	chain, err := ust.ChainFromDense(rows)
	if err != nil {
		t.Fatal(err)
	}
	db := ust.NewDatabase(chain)
	if err := db.AddSimple(1, ust.PointDistribution(n, grid.ID(5, 5))); err != nil {
		t.Fatal(err)
	}
	engine := ust.NewEngine(db, ust.Options{})
	index := ust.IndexSpace(grid, 0)
	region := ust.NewRect(4, 4, 6, 6)

	viaRegion, err := engine.Evaluate(context.Background(), ust.NewRequest(ust.PredicateExists,
		ust.WithRegion(region, index),
		ust.WithTimeRange(1, 3)))
	if err != nil {
		t.Fatal(err)
	}
	viaStates, err := engine.Evaluate(context.Background(), ust.NewRequest(ust.PredicateExists,
		ust.WithStates(index.Search(region)),
		ust.WithTimeRange(1, 3)))
	if err != nil {
		t.Fatal(err)
	}
	if viaRegion.Results[0].Prob != viaStates.Results[0].Prob {
		t.Errorf("region-resolved %v != state-resolved %v",
			viaRegion.Results[0].Prob, viaStates.Results[0].Prob)
	}
	if viaRegion.Results[0].Prob <= 0.5 {
		t.Errorf("object starting inside the region should very likely hit it; got %v",
			viaRegion.Results[0].Prob)
	}
}

func TestEvaluateSeqStreamsAndCancels(t *testing.T) {
	chain, err := ust.ChainFromDense([][]float64{
		{0.5, 0.5, 0},
		{0, 0.5, 0.5},
		{0.5, 0, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := ust.NewDatabase(chain)
	for id := 0; id < 200; id++ {
		if err := db.AddSimple(id, ust.PointDistribution(3, id%3)); err != nil {
			t.Fatal(err)
		}
	}
	engine := ust.NewEngine(db, ust.Options{})
	req := ust.NewRequest(ust.PredicateExists,
		ust.WithStates([]int{0}), ust.WithTimeRange(1, 5))

	// Streaming yields every object in order.
	count := 0
	for r, err := range engine.EvaluateSeq(context.Background(), req) {
		if err != nil {
			t.Fatal(err)
		}
		if r.ObjectID != count {
			t.Fatalf("stream out of order: got object %d at position %d", r.ObjectID, count)
		}
		count++
	}
	if count != 200 {
		t.Fatalf("streamed %d results, want 200", count)
	}

	// Cancellation stops the stream within one work item.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	count = 0
	var gotErr error
	for _, err := range engine.EvaluateSeq(ctx, req) {
		if err != nil {
			gotErr = err
			break
		}
		count++
		if count == 5 {
			cancel()
		}
	}
	if !errors.Is(gotErr, context.Canceled) {
		t.Fatalf("stream error = %v, want context.Canceled", gotErr)
	}
	if count > 6 {
		t.Fatalf("stream yielded %d results after cancellation at 5", count)
	}
}
