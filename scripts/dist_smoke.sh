#!/bin/sh
# Distributed smoke: a real multi-process deployment — two worker
# ustserve processes plus a coordinator fronting them — queried remotely
# and diffed byte-for-byte against in-process evaluation, including a
# count aggregate (factors pooled over the wire, folded coordinator-
# side). Also checks /readyz gating, the ust_role / ust_ring_members
# metrics, that killing a worker yields a clean error (not a hang), and
# a graceful fleet shutdown. A second phase starts a replicated fleet
# (3 workers, -replicas 2), kills a worker mid-run, and requires queries
# to KEEP succeeding byte-identically while ust_worker_healthy flips.
# `make dist-smoke` runs this; CI runs it via `make ci`.
set -eu

GO=${GO:-go}
W0_PORT=${W0_PORT:-7271}
W1_PORT=${W1_PORT:-7272}
CO_PORT=${CO_PORT:-7273}
R0_PORT=${R0_PORT:-7274}
R1_PORT=${R1_PORT:-7275}
R2_PORT=${R2_PORT:-7276}
RC_PORT=${RC_PORT:-7277}
TMP=$(mktemp -d)
W0_PID=""; W1_PID=""; CO_PID=""
R0_PID=""; R1_PID=""; R2_PID=""; RC_PID=""
cleanup() {
    for pid in "$W0_PID" "$W1_PID" "$CO_PID" "$R0_PID" "$R1_PID" "$R2_PID" "$RC_PID"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "dist-smoke: building"
$GO build -o "$TMP/ustgen" ./cmd/ustgen
$GO build -o "$TMP/ustserve" ./cmd/ustserve
$GO build -o "$TMP/ustquery" ./cmd/ustquery

echo "dist-smoke: generating dataset"
"$TMP/ustgen" -o "$TMP/smoke.ust" -objects 200 -states 2000 -seed 7 >/dev/null

CO_BASE="http://127.0.0.1:$CO_PORT"
W0_BASE="http://127.0.0.1:$W0_PORT"
W1_BASE="http://127.0.0.1:$W1_PORT"

# wait_ready BASE LOG PID: poll /readyz until 200.
wait_ready() {
    i=0
    until curl -fsS "$1/readyz" >/dev/null 2>&1; do
        i=$((i+1))
        if [ "$i" -gt 100 ]; then
            echo "dist-smoke: $1 never became ready"; cat "$2"; exit 1
        fi
        kill -0 "$3" 2>/dev/null || { echo "dist-smoke: process behind $1 died"; cat "$2"; exit 1; }
        sleep 0.2
    done
}

echo "dist-smoke: starting 2 workers (joined to the coordinator's sweep tier)"
# Workers hold the data slices; -sweep-tier points at the coordinator so
# the fleet computes each distinct backward sweep once. The tier
# degrades gracefully while the coordinator is still coming up.
"$TMP/ustserve" -addr "127.0.0.1:$W0_PORT" -sweep-tier "$CO_BASE" 2>"$TMP/w0.log" &
W0_PID=$!
"$TMP/ustserve" -addr "127.0.0.1:$W1_PORT" -sweep-tier "$CO_BASE" 2>"$TMP/w1.log" &
W1_PID=$!
wait_ready "$W0_BASE" "$TMP/w0.log" "$W0_PID"
wait_ready "$W1_BASE" "$TMP/w1.log" "$W1_PID"

echo "dist-smoke: starting the coordinator (loads the dataset, migrates slices to workers)"
"$TMP/ustserve" -addr "127.0.0.1:$CO_PORT" -coordinator \
    -worker "$W0_BASE" -worker "$W1_BASE" \
    -dataset smoke="$TMP/smoke.ust" 2>"$TMP/co.log" &
CO_PID=$!
wait_ready "$CO_BASE" "$TMP/co.log" "$CO_PID"

echo "dist-smoke: workers received their slices"
curl -fsS "$W0_BASE/v1/datasets" | grep -q '"smoke.shard0"'
curl -fsS "$W1_BASE/v1/datasets" | grep -q '"smoke.shard1"'

echo "dist-smoke: remote ustquery through the coordinator matches in-process"
"$TMP/ustquery" -remote "$CO_BASE" -dataset smoke -states 100-140 -times 10-14 -top 5 >"$TMP/remote.out"
grep -q "object" "$TMP/remote.out"
"$TMP/ustquery" -db "$TMP/smoke.ust" -states 100-140 -times 10-14 -top 5 >"$TMP/local.out"
diff "$TMP/remote.out" "$TMP/local.out"

echo "dist-smoke: compound text query end-to-end"
TQ='exists(states(100-140) @ [10,14]) and not forall(states(100-140) @ [10,12]) where top=5'
"$TMP/ustquery" -db "$TMP/smoke.ust" -q "$TQ" >"$TMP/text-local.out"
"$TMP/ustquery" -remote "$CO_BASE" -dataset smoke -q "$TQ" >"$TMP/text-remote.out"
diff "$TMP/text-local.out" "$TMP/text-remote.out"

echo "dist-smoke: count(...) aggregate — factors pooled from workers, folded coordinator-side"
AQ='count(exists(states(100-140) @ [10,14])) where min=3'
"$TMP/ustquery" -db "$TMP/smoke.ust" -q "$AQ" >"$TMP/agg-local.out"
grep -q 'E\[count\]' "$TMP/agg-local.out"
"$TMP/ustquery" -remote "$CO_BASE" -dataset smoke -q "$AQ" >"$TMP/agg-remote.out"
diff "$TMP/agg-local.out" "$TMP/agg-remote.out"

echo "dist-smoke: roles and ring size in /metrics"
curl -fsS "$CO_BASE/metrics" >"$TMP/co-metrics.out"
grep -q 'ust_role{role="coordinator"} 1' "$TMP/co-metrics.out"
grep -q 'ust_ring_members 2' "$TMP/co-metrics.out"
curl -fsS "$W0_BASE/metrics" | grep -q 'ust_role{role="worker"} 1'

echo "dist-smoke: killing worker 1 — queries fail cleanly, the fleet stays up"
kill -9 "$W1_PID"; W1_PID=""
RC=0
"$TMP/ustquery" -remote "$CO_BASE" -dataset smoke -states 100-140 -times 10-14 -top 5 \
    >"$TMP/degraded.out" 2>&1 || RC=$?
if [ "$RC" -eq 0 ]; then
    echo "dist-smoke: query over a dead worker unexpectedly succeeded"; exit 1
fi
# The coordinator itself survives and still answers liveness/readiness.
curl -fsS "$CO_BASE/healthz" >/dev/null
curl -fsS "$CO_BASE/readyz" >/dev/null

echo "dist-smoke: graceful fleet shutdown"
for pair in "CO:$CO_PID" "W0:$W0_PID"; do
    pid=${pair#*:}
    kill -TERM "$pid"
done
for pair in "co:$CO_PID:$TMP/co.log" "w0:$W0_PID:$TMP/w0.log"; do
    name=$(echo "$pair" | cut -d: -f2)
    log=$(echo "$pair" | cut -d: -f3-)
    i=0
    while kill -0 "$name" 2>/dev/null; do
        i=$((i+1)); [ "$i" -gt 50 ] && { echo "dist-smoke: process ignored SIGTERM"; exit 1; }
        sleep 0.2
    done
    wait "$name" 2>/dev/null && RC=0 || RC=$?
    if [ "$RC" -ne 0 ]; then
        echo "dist-smoke: process exited with $RC"; cat "$log"; exit 1
    fi
    grep -q "bye" "$log"
done
CO_PID=""; W0_PID=""

# ---------------------------------------------------------------------
# Phase 2: replicated fleet. 3 workers, -replicas 2 — every shard lives
# on two workers, so killing ONE worker mid-run must cost nothing:
# queries keep succeeding, results stay byte-identical to in-process
# evaluation, and the coordinator's health probe flips
# ust_worker_healthy for the victim.
# ---------------------------------------------------------------------
R0_BASE="http://127.0.0.1:$R0_PORT"
R1_BASE="http://127.0.0.1:$R1_PORT"
R2_BASE="http://127.0.0.1:$R2_PORT"
RC_BASE="http://127.0.0.1:$RC_PORT"

echo "dist-smoke: starting replicated fleet (3 workers, replicas=2)"
"$TMP/ustserve" -addr "127.0.0.1:$R0_PORT" 2>"$TMP/r0.log" &
R0_PID=$!
"$TMP/ustserve" -addr "127.0.0.1:$R1_PORT" 2>"$TMP/r1.log" &
R1_PID=$!
"$TMP/ustserve" -addr "127.0.0.1:$R2_PORT" 2>"$TMP/r2.log" &
R2_PID=$!
wait_ready "$R0_BASE" "$TMP/r0.log" "$R0_PID"
wait_ready "$R1_BASE" "$TMP/r1.log" "$R1_PID"
wait_ready "$R2_BASE" "$TMP/r2.log" "$R2_PID"

"$TMP/ustserve" -addr "127.0.0.1:$RC_PORT" -coordinator -replicas 2 \
    -probe-interval 100ms \
    -worker "$R0_BASE" -worker "$R1_BASE" -worker "$R2_BASE" \
    -dataset smoke="$TMP/smoke.ust" 2>"$TMP/rc.log" &
RC_PID=$!
wait_ready "$RC_BASE" "$TMP/rc.log" "$RC_PID"

echo "dist-smoke: all workers report healthy"
i=0
until curl -fsS "$RC_BASE/metrics" | grep -c 'ust_worker_healthy{worker="[^"]*"} 1' | grep -qx 3; do
    i=$((i+1)); [ "$i" -gt 50 ] && { echo "dist-smoke: workers never all healthy"; cat "$TMP/rc.log"; exit 1; }
    sleep 0.2
done

echo "dist-smoke: replicated fleet matches in-process before the kill"
"$TMP/ustquery" -remote "$RC_BASE" -dataset smoke -states 100-140 -times 10-14 -top 5 >"$TMP/rep-before.out"
diff "$TMP/rep-before.out" "$TMP/local.out"

echo "dist-smoke: killing a replica-holding worker — queries must KEEP succeeding"
kill -9 "$R2_PID"; R2_PID=""
"$TMP/ustquery" -remote "$RC_BASE" -dataset smoke -states 100-140 -times 10-14 -top 5 >"$TMP/rep-after.out"
diff "$TMP/rep-after.out" "$TMP/local.out"
"$TMP/ustquery" -remote "$RC_BASE" -dataset smoke -q "$TQ" >"$TMP/rep-text.out"
diff "$TMP/rep-text.out" "$TMP/text-local.out"
"$TMP/ustquery" -remote "$RC_BASE" -dataset smoke -q "$AQ" >"$TMP/rep-agg.out"
diff "$TMP/rep-agg.out" "$TMP/agg-local.out"

echo "dist-smoke: health probe flips ust_worker_healthy for the victim"
i=0
until curl -fsS "$RC_BASE/metrics" | grep -q "ust_worker_healthy{worker=\"$R2_BASE\"} 0"; do
    i=$((i+1)); [ "$i" -gt 50 ] && { echo "dist-smoke: probe never declared the victim dead"; curl -fsS "$RC_BASE/metrics" | grep ust_worker_healthy; exit 1; }
    sleep 0.2
done
curl -fsS "$RC_BASE/metrics" | grep -q "ust_worker_healthy{worker=\"$R0_BASE\"} 1"

echo "dist-smoke: queries still succeed after the probe declared the death"
"$TMP/ustquery" -remote "$RC_BASE" -dataset smoke -states 100-140 -times 10-14 -top 5 >"$TMP/rep-dead.out"
diff "$TMP/rep-dead.out" "$TMP/local.out"

for pid in "$RC_PID" "$R0_PID" "$R1_PID"; do
    kill -TERM "$pid" 2>/dev/null || true
done
RC_PID=""; R0_PID=""; R1_PID=""
echo "dist-smoke: OK"
