#!/bin/sh
# Distributed smoke: a real multi-process deployment — two worker
# ustserve processes plus a coordinator fronting them — queried remotely
# and diffed byte-for-byte against in-process evaluation, including a
# count aggregate (factors pooled over the wire, folded coordinator-
# side). Also checks /readyz gating, the ust_role / ust_ring_members
# metrics, that killing a worker yields a clean error (not a hang), and
# a graceful fleet shutdown. `make dist-smoke` runs this; CI runs it
# via `make ci`.
set -eu

GO=${GO:-go}
W0_PORT=${W0_PORT:-7271}
W1_PORT=${W1_PORT:-7272}
CO_PORT=${CO_PORT:-7273}
TMP=$(mktemp -d)
W0_PID=""; W1_PID=""; CO_PID=""
cleanup() {
    for pid in "$W0_PID" "$W1_PID" "$CO_PID"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "dist-smoke: building"
$GO build -o "$TMP/ustgen" ./cmd/ustgen
$GO build -o "$TMP/ustserve" ./cmd/ustserve
$GO build -o "$TMP/ustquery" ./cmd/ustquery

echo "dist-smoke: generating dataset"
"$TMP/ustgen" -o "$TMP/smoke.ust" -objects 200 -states 2000 -seed 7 >/dev/null

CO_BASE="http://127.0.0.1:$CO_PORT"
W0_BASE="http://127.0.0.1:$W0_PORT"
W1_BASE="http://127.0.0.1:$W1_PORT"

# wait_ready BASE LOG PID: poll /readyz until 200.
wait_ready() {
    i=0
    until curl -fsS "$1/readyz" >/dev/null 2>&1; do
        i=$((i+1))
        if [ "$i" -gt 100 ]; then
            echo "dist-smoke: $1 never became ready"; cat "$2"; exit 1
        fi
        kill -0 "$3" 2>/dev/null || { echo "dist-smoke: process behind $1 died"; cat "$2"; exit 1; }
        sleep 0.2
    done
}

echo "dist-smoke: starting 2 workers (joined to the coordinator's sweep tier)"
# Workers hold the data slices; -sweep-tier points at the coordinator so
# the fleet computes each distinct backward sweep once. The tier
# degrades gracefully while the coordinator is still coming up.
"$TMP/ustserve" -addr "127.0.0.1:$W0_PORT" -sweep-tier "$CO_BASE" 2>"$TMP/w0.log" &
W0_PID=$!
"$TMP/ustserve" -addr "127.0.0.1:$W1_PORT" -sweep-tier "$CO_BASE" 2>"$TMP/w1.log" &
W1_PID=$!
wait_ready "$W0_BASE" "$TMP/w0.log" "$W0_PID"
wait_ready "$W1_BASE" "$TMP/w1.log" "$W1_PID"

echo "dist-smoke: starting the coordinator (loads the dataset, migrates slices to workers)"
"$TMP/ustserve" -addr "127.0.0.1:$CO_PORT" -coordinator \
    -worker "$W0_BASE" -worker "$W1_BASE" \
    -dataset smoke="$TMP/smoke.ust" 2>"$TMP/co.log" &
CO_PID=$!
wait_ready "$CO_BASE" "$TMP/co.log" "$CO_PID"

echo "dist-smoke: workers received their slices"
curl -fsS "$W0_BASE/v1/datasets" | grep -q '"smoke.shard0"'
curl -fsS "$W1_BASE/v1/datasets" | grep -q '"smoke.shard1"'

echo "dist-smoke: remote ustquery through the coordinator matches in-process"
"$TMP/ustquery" -remote "$CO_BASE" -dataset smoke -states 100-140 -times 10-14 -top 5 >"$TMP/remote.out"
grep -q "object" "$TMP/remote.out"
"$TMP/ustquery" -db "$TMP/smoke.ust" -states 100-140 -times 10-14 -top 5 >"$TMP/local.out"
diff "$TMP/remote.out" "$TMP/local.out"

echo "dist-smoke: compound text query end-to-end"
TQ='exists(states(100-140) @ [10,14]) and not forall(states(100-140) @ [10,12]) where top=5'
"$TMP/ustquery" -db "$TMP/smoke.ust" -q "$TQ" >"$TMP/text-local.out"
"$TMP/ustquery" -remote "$CO_BASE" -dataset smoke -q "$TQ" >"$TMP/text-remote.out"
diff "$TMP/text-local.out" "$TMP/text-remote.out"

echo "dist-smoke: count(...) aggregate — factors pooled from workers, folded coordinator-side"
AQ='count(exists(states(100-140) @ [10,14])) where min=3'
"$TMP/ustquery" -db "$TMP/smoke.ust" -q "$AQ" >"$TMP/agg-local.out"
grep -q 'E\[count\]' "$TMP/agg-local.out"
"$TMP/ustquery" -remote "$CO_BASE" -dataset smoke -q "$AQ" >"$TMP/agg-remote.out"
diff "$TMP/agg-local.out" "$TMP/agg-remote.out"

echo "dist-smoke: roles and ring size in /metrics"
curl -fsS "$CO_BASE/metrics" >"$TMP/co-metrics.out"
grep -q 'ust_role{role="coordinator"} 1' "$TMP/co-metrics.out"
grep -q 'ust_ring_members 2' "$TMP/co-metrics.out"
curl -fsS "$W0_BASE/metrics" | grep -q 'ust_role{role="worker"} 1'

echo "dist-smoke: killing worker 1 — queries fail cleanly, the fleet stays up"
kill -9 "$W1_PID"; W1_PID=""
RC=0
"$TMP/ustquery" -remote "$CO_BASE" -dataset smoke -states 100-140 -times 10-14 -top 5 \
    >"$TMP/degraded.out" 2>&1 || RC=$?
if [ "$RC" -eq 0 ]; then
    echo "dist-smoke: query over a dead worker unexpectedly succeeded"; exit 1
fi
# The coordinator itself survives and still answers liveness/readiness.
curl -fsS "$CO_BASE/healthz" >/dev/null
curl -fsS "$CO_BASE/readyz" >/dev/null

echo "dist-smoke: graceful fleet shutdown"
for pair in "CO:$CO_PID" "W0:$W0_PID"; do
    pid=${pair#*:}
    kill -TERM "$pid"
done
for pair in "co:$CO_PID:$TMP/co.log" "w0:$W0_PID:$TMP/w0.log"; do
    name=$(echo "$pair" | cut -d: -f2)
    log=$(echo "$pair" | cut -d: -f3-)
    i=0
    while kill -0 "$name" 2>/dev/null; do
        i=$((i+1)); [ "$i" -gt 50 ] && { echo "dist-smoke: process ignored SIGTERM"; exit 1; }
        sleep 0.2
    done
    wait "$name" 2>/dev/null && RC=0 || RC=$?
    if [ "$RC" -ne 0 ]; then
        echo "dist-smoke: process exited with $RC"; cat "$log"; exit 1
    fi
    grep -q "bye" "$log"
done
CO_PID=""; W0_PID=""
echo "dist-smoke: OK"
