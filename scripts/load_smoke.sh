#!/bin/sh
# Load smoke: a short, seeded ustload run against each deployment shape
# — in-process, in-process -shards 4, and a real ustserve -shards 4
# over HTTP — asserting each produces a well-formed BENCH_LOAD.json
# with per-class quantiles, that `ustload analyze` round-trips its own
# output clean, that `benchjson -load` gates the report through the
# same machinery as BENCH.json, and that the server exposes the
# per-endpoint latency histograms the run just exercised.
# `make load-smoke` runs this; it is part of `make ci`.
set -eu

GO=${GO:-go}
PORT=${PORT:-7187}
TMP=$(mktemp -d)
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "load-smoke: building"
$GO build -o "$TMP/ustgen" ./cmd/ustgen
$GO build -o "$TMP/ustserve" ./cmd/ustserve
$GO build -o "$TMP/ustload" ./cmd/ustload

# Small but non-trivial: 200 objects over 2000 states keeps every class
# (including the ingest soak) meaningful at CI cost.
LOAD_ARGS="-rate 150 -duration 1s -seed 7 -timeout 10s"

echo "load-smoke: in-process run"
"$TMP/ustload" $LOAD_ARGS -objects 200 -states 2000 -gen-seed 7 \
    -o "$TMP/inproc.json" -log "$TMP/inproc.log" 2>"$TMP/inproc.err" \
    || { cat "$TMP/inproc.err"; exit 1; }
grep -q '"p99_ms"' "$TMP/inproc.json"
grep -q '"achieved_rate"' "$TMP/inproc.json"
grep -q '"_all"' "$TMP/inproc.json"
# The request log must exist and carry the dispatched ops in order.
[ -s "$TMP/inproc.log" ]
grep -q '^0 ' "$TMP/inproc.log"

echo "load-smoke: in-process run, -shards 4"
"$TMP/ustload" $LOAD_ARGS -objects 200 -states 2000 -gen-seed 7 -shards 4 \
    -o "$TMP/sharded.json" 2>"$TMP/sharded.err" \
    || { cat "$TMP/sharded.err"; exit 1; }
grep -q '"shards": 4' "$TMP/sharded.json"

echo "load-smoke: ustserve -shards 4 over HTTP"
"$TMP/ustgen" -o "$TMP/smoke.ust" -objects 200 -states 2000 -seed 7 >/dev/null
"$TMP/ustserve" -addr "127.0.0.1:$PORT" -shards 4 -dataset smoke="$TMP/smoke.ust" 2>"$TMP/server.log" &
SRV_PID=$!
BASE="http://127.0.0.1:$PORT"
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i+1))
    if [ "$i" -gt 50 ]; then
        echo "load-smoke: server never became healthy"; cat "$TMP/server.log"; exit 1
    fi
    kill -0 "$SRV_PID" 2>/dev/null || { echo "load-smoke: server died"; cat "$TMP/server.log"; exit 1; }
    sleep 0.2
done
"$TMP/ustload" $LOAD_ARGS -remote "$BASE" -dataset smoke \
    -o "$TMP/remote.json" 2>"$TMP/remote.err" \
    || { cat "$TMP/remote.err"; cat "$TMP/server.log"; exit 1; }
grep -q '"target": "http"' "$TMP/remote.json"

echo "load-smoke: server-side latency histograms recorded the run"
curl -fsS "$BASE/metrics" >"$TMP/metrics.out"
grep -q 'ust_request_duration_seconds_bucket{endpoint="query"' "$TMP/metrics.out"
grep -q 'ust_http_requests_total{endpoint="query",code="200"}' "$TMP/metrics.out"
grep -q 'ust_http_requests_total{endpoint="observe",code="200"}' "$TMP/metrics.out"
kill -TERM "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""

echo "load-smoke: analyze round-trips its own output"
for f in inproc sharded remote; do
    "$TMP/ustload" analyze "$TMP/$f.json" "$TMP/$f.json" 2>/dev/null \
        || { echo "load-smoke: self-analyze of $f.json found regressions"; exit 1; }
done

echo "load-smoke: analyze flags a fabricated p99 regression"
sed 's/"p99_ms": \([0-9.]*\)/"p99_ms": 99999/' "$TMP/inproc.json" >"$TMP/regressed.json"
if "$TMP/ustload" analyze "$TMP/inproc.json" "$TMP/regressed.json" 2>"$TMP/analyze.err"; then
    echo "load-smoke: analyze missed an obvious regression"; exit 1
fi
grep -q 'REGRESSION' "$TMP/analyze.err"

echo "load-smoke: benchjson -load gates BENCH_LOAD.json through the bench machinery"
$GO run ./cmd/benchjson -load "$TMP/remote.json" -o "$TMP/load_summary.json" \
    -baseline "$TMP/remote.json" -gate Load -gate-metric p99_ms 2>"$TMP/benchjson.err" \
    || { cat "$TMP/benchjson.err"; exit 1; }
grep -q '"Load/_all@150"' "$TMP/load_summary.json"

echo "load-smoke: OK"
