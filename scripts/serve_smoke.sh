#!/bin/sh
# Server smoke: generate a dataset, start ustserve, run a remote query
# (ustquery -remote), a curl query + subscribe round-trip, check
# /metrics, then shut down gracefully via SIGTERM and assert a clean
# exit. `make serve-smoke` runs this; CI runs it after `make ci`.
set -eu

GO=${GO:-go}
PORT=${PORT:-7177}
TMP=$(mktemp -d)
SRV_PID=""
cleanup() {
    [ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building"
$GO build -o "$TMP/ustgen" ./cmd/ustgen
$GO build -o "$TMP/ustserve" ./cmd/ustserve
$GO build -o "$TMP/ustquery" ./cmd/ustquery

echo "serve-smoke: generating dataset"
"$TMP/ustgen" -o "$TMP/smoke.ust" -objects 200 -states 2000 -seed 7 >/dev/null

# -shards 4: the server runs the consistent-hash shard router, so every
# remote≡local diff below doubles as an end-to-end conformance check of
# sharded evaluation against the single-engine ustquery output.
"$TMP/ustserve" -addr "127.0.0.1:$PORT" -shards 4 -dataset smoke="$TMP/smoke.ust" 2>"$TMP/server.log" &
SRV_PID=$!
BASE="http://127.0.0.1:$PORT"

echo "serve-smoke: waiting for /healthz"
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i+1))
    if [ "$i" -gt 50 ]; then
        echo "serve-smoke: server never became healthy"; cat "$TMP/server.log"; exit 1
    fi
    kill -0 "$SRV_PID" 2>/dev/null || { echo "serve-smoke: server died"; cat "$TMP/server.log"; exit 1; }
    sleep 0.2
done

echo "serve-smoke: remote query via ustquery"
"$TMP/ustquery" -remote "$BASE" -dataset smoke -states 100-140 -times 10-14 -top 5 >"$TMP/remote.out"
grep -q "object" "$TMP/remote.out"

echo "serve-smoke: remote ustquery matches in-process ustquery"
"$TMP/ustquery" -db "$TMP/smoke.ust" -states 100-140 -times 10-14 -top 5 >"$TMP/local.out"
diff "$TMP/remote.out" "$TMP/local.out"

echo "serve-smoke: curl query"
curl -fsS "$BASE/v1/query" -d '{"dataset":"smoke","request":{"predicate":"exists","states":[100,120,140],"times":[10,14],"top_k":3}}' \
    | grep -q '"strategy":"qb"'

echo "serve-smoke: the same text query end-to-end (-q local, -q remote, curl)"
TQ='exists(states(100-140) @ [10,14]) and not forall(states(100-140) @ [10,12]) where top=5'
"$TMP/ustquery" -db "$TMP/smoke.ust" -q "$TQ" >"$TMP/text-local.out"
"$TMP/ustquery" -remote "$BASE" -dataset smoke -q "$TQ" >"$TMP/text-remote.out"
diff "$TMP/text-local.out" "$TMP/text-remote.out"
curl -fsS "$BASE/v1/query" -d "{\"dataset\":\"smoke\",\"query\":\"$TQ\"}" | grep -q '"results"'

echo "serve-smoke: count(...) aggregate end-to-end (local = sharded remote = curl)"
AQ='count(exists(states(100-140) @ [10,14])) where min=3'
"$TMP/ustquery" -db "$TMP/smoke.ust" -q "$AQ" >"$TMP/agg-local.out"
grep -q 'E\[count\]' "$TMP/agg-local.out"
# The remote side answers through the 4-shard router: a byte-identical
# diff here is the live proof that pooled factors re-folded through the
# canonical tree reproduce the single-engine PMF exactly.
"$TMP/ustquery" -remote "$BASE" -dataset smoke -q "$AQ" >"$TMP/agg-remote.out"
diff "$TMP/agg-local.out" "$TMP/agg-remote.out"
curl -fsS "$BASE/v1/query" -d "{\"dataset\":\"smoke\",\"query\":\"$AQ\"}" | grep -q '"pmf"'
# The NDJSON stream endpoint answers an aggregate as one agg line + done.
curl -fsS "$BASE/v1/query/stream" -d "{\"dataset\":\"smoke\",\"query\":\"$AQ\"}" \
    | head -n 1 | grep -q '"agg"'

echo "serve-smoke: -q parse errors carry a caret"
if "$TMP/ustquery" -db "$TMP/smoke.ust" -q 'exsts(states(1) @ [1,2])' >/dev/null 2>"$TMP/parse-err.out"; then
    echo "serve-smoke: bad -q query was accepted"; exit 1
fi
grep -q '\^' "$TMP/parse-err.out"

echo "serve-smoke: subscribe round-trip (snapshot line + pushed update)"
curl -fsSN --no-buffer "$BASE/v1/subscribe" \
    -d '{"dataset":"smoke","request":{"predicate":"exists","states":[100,120,140],"times":[10,14]}}' \
    >"$TMP/sub.out" &
SUB_PID=$!
i=0
until [ -s "$TMP/sub.out" ]; do
    i=$((i+1)); [ "$i" -gt 50 ] && { echo "serve-smoke: no subscription snapshot"; exit 1; }
    sleep 0.2
done
grep -q '"full":true' "$TMP/sub.out"
# Track a brand-new object sitting inside the watched region: the
# standing query must push an incremental update containing it.
curl -fsS "$BASE/v1/datasets/smoke/objects" \
    -d '{"id":9999,"observations":[{"time":9,"states":[120],"probs":[1]}]}' >/dev/null
i=0
until [ "$(wc -l < "$TMP/sub.out")" -ge 2 ]; do
    i=$((i+1)); [ "$i" -gt 50 ] && { echo "serve-smoke: no pushed update after ingest"; cat "$TMP/sub.out"; exit 1; }
    sleep 0.2
done
if grep -q '"error"' "$TMP/sub.out"; then
    echo "serve-smoke: subscription errored"; cat "$TMP/sub.out"; exit 1
fi
grep -q '"object":9999' "$TMP/sub.out"
kill "$SUB_PID" 2>/dev/null || true

echo "serve-smoke: upload a v2 dataset via PUT /v1/datasets and query it"
# ustgen emits store format v2 by default; the server adopts the columns
# zero-copy via LoadDatabaseMapped, so this exercises the mapped load
# path end-to-end over HTTP.
"$TMP/ustgen" -o "$TMP/upload.ust" -objects 100 -states 1000 -seed 11 >/dev/null
head -c 8 "$TMP/upload.ust" | od -An -tx1 | grep -q '55 53 54 44 02 00 00 00' # "USTD" v2 magic
curl -fsS -X PUT "$BASE/v1/datasets/uploaded" --data-binary @"$TMP/upload.ust" >/dev/null
curl -fsS "$BASE/v1/datasets" | grep -q '"uploaded"'
"$TMP/ustquery" -remote "$BASE" -dataset uploaded -states 50-80 -times 3-6 -top 5 >"$TMP/upload-remote.out"
"$TMP/ustquery" -db "$TMP/upload.ust" -states 50-80 -times 3-6 -top 5 >"$TMP/upload-local.out"
diff "$TMP/upload-remote.out" "$TMP/upload-local.out"

echo "serve-smoke: metrics"
curl -fsS "$BASE/metrics" >"$TMP/metrics.out"
grep -q "ust_requests_total" "$TMP/metrics.out"
grep -q "ust_singleflight_coalesced_total" "$TMP/metrics.out"
grep -q 'ust_dataset_objects{dataset="smoke"} 201' "$TMP/metrics.out"

echo "serve-smoke: graceful shutdown"
kill -TERM "$SRV_PID"
i=0
while kill -0 "$SRV_PID" 2>/dev/null; do
    i=$((i+1)); [ "$i" -gt 50 ] && { echo "serve-smoke: server ignored SIGTERM"; exit 1; }
    sleep 0.2
done
wait "$SRV_PID" 2>/dev/null && RC=0 || RC=$?
if [ "$RC" -ne 0 ]; then
    echo "serve-smoke: server exited with $RC"; cat "$TMP/server.log"; exit 1
fi
grep -q "bye" "$TMP/server.log"
SRV_PID=""
echo "serve-smoke: OK"
