package ust

import (
	"net/http"

	"ust/internal/service"
	"ust/internal/wire"
)

// The service layer: a multi-tenant, wire-ready server over the query
// engine. A Service owns named datasets (each a Database/Engine pair),
// applies per-request deadlines and admission control, coalesces
// identical in-flight requests (single-flight) on top of the engine's
// shared score cache, and pushes incremental results to standing
// queries through Subscribe. NewServiceHandler exposes the whole thing
// over HTTP/NDJSON — the surface cmd/ustserve serves and package
// ust/client consumes.

type (
	// Service is the multi-tenant serving layer; see NewService.
	Service = service.Service
	// ServiceConfig tunes a Service (engine options, admission width,
	// default deadline).
	ServiceConfig = service.Config
	// DatasetInfo describes one named dataset of a Service.
	DatasetInfo = service.Info
	// ServiceStats is a snapshot of the service-wide counters
	// (requests, single-flight coalescing, admissions, subscriptions).
	ServiceStats = service.Stats
	// Subscription is a standing query delivering incremental updates;
	// see Service.Subscribe.
	Subscription = service.Subscription
	// Update is one incremental refresh of a Subscription.
	Update = service.Update
)

// Service-layer sentinel errors.
var (
	// ErrUnknownDataset: the named dataset does not exist.
	ErrUnknownDataset = service.ErrUnknownDataset
	// ErrDatasetExists: create/load would overwrite an existing dataset.
	ErrDatasetExists = service.ErrDatasetExists
	// ErrServiceOverloaded: admission control could not grant a slot
	// before the request's deadline.
	ErrServiceOverloaded = service.ErrOverloaded
	// ErrServiceClosed: the service has been shut down.
	ErrServiceClosed = service.ErrClosed
)

// DefaultMaxConcurrent is the default admission-limiter width of a
// Service.
const DefaultMaxConcurrent = service.DefaultMaxConcurrent

// NewService builds an empty multi-tenant service; register datasets
// with Create or Load.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// NewServiceHandler exposes svc over HTTP: /v1/query (JSON),
// /v1/query/stream (NDJSON), /v1/subscribe (NDJSON push), /v1/datasets
// (load, ingest, inspect), /healthz and /metrics. Mount it on any
// http.Server; cmd/ustserve is a thin wrapper around exactly this.
func NewServiceHandler(svc *Service) http.Handler { return service.NewHandler(svc) }

// MarshalRequest encodes a Request into its canonical wire JSON — the
// network contract accepted by POST /v1/query. Every option
// round-trips; the one exception is WithRegion's resolver (an
// in-process index), which the serving dataset re-attaches.
func MarshalRequest(r Request) ([]byte, error) { return wire.EncodeRequest(r) }

// UnmarshalRequest strictly decodes wire JSON into a Request: unknown
// fields, unknown enum values and trailing garbage are errors, never
// panics.
func UnmarshalRequest(data []byte) (Request, error) { return wire.DecodeRequest(data) }
