package ust_test

import (
	"context"
	"reflect"
	"testing"

	"ust"
)

// The public sharded-engine surface: NewShardedEngine answers
// identically to NewEngine over the same data, satisfies the shared
// Evaluator interface, and NewSharedCache lets independent engines
// reuse each other's sweeps.
func TestShardedEngineFacade(t *testing.T) {
	p := ust.DefaultSyntheticParams(7)
	p.NumObjects, p.NumStates = 60, 500
	db, err := ust.GenerateSyntheticDatabase(p)
	if err != nil {
		t.Fatal(err)
	}
	q := ust.NewQuery(ust.Interval(40, 80), ust.Interval(12, 17))
	req := ust.NewRequest(ust.PredicateExists, ust.WithWindow(q), ust.WithTopK(10))

	single := ust.NewEngine(db, ust.Options{})
	sharded, err := ust.NewShardedEngine(db, 4, ust.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var evals []ust.Evaluator = []ust.Evaluator{single, sharded}

	ctx := context.Background()
	want, err := evals[0].Evaluate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := evals[1].Evaluate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatalf("sharded facade diverged:\n  got  %+v\n  want %+v", got.Results, want.Results)
	}

	// Two engines over the same database sharing one cache: the second
	// engine's sweep is served from the first engine's work.
	shared := ust.NewSharedCache(0)
	a := ust.NewEngine(db, ust.Options{Cache: shared})
	b := ust.NewEngine(db, ust.Options{Cache: shared})
	if _, err := a.Evaluate(ctx, ust.NewRequest(ust.PredicateExists, ust.WithWindow(q))); err != nil {
		t.Fatal(err)
	}
	resp, err := b.Evaluate(ctx, ust.NewRequest(ust.PredicateExists, ust.WithWindow(q)))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cache.Hits == 0 || resp.Cache.Misses != 0 {
		t.Fatalf("shared cache not shared across engines: %+v", resp.Cache)
	}
}
