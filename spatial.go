package ust

import (
	"math/rand"

	"ust/internal/network"
	"ust/internal/spatial"
)

// Spatial domain helpers: grids, regions and spatial indexing, used to
// define state spaces over real geometry and resolve query regions into
// state-id sets.

type (
	// Point is a location in the plane.
	Point = spatial.Point
	// Rect is an axis-aligned rectangle region.
	Rect = spatial.Rect
	// Circle is a disk region.
	Circle = spatial.Circle
	// Region is a subset of the plane usable as the spatial side of a
	// query window.
	Region = spatial.Region
	// RegionResolver maps a region to covered state ids: an RTree over
	// the state space, or a Grid/LineSpace directly. Used by WithRegion.
	RegionResolver = spatial.Resolver
	// RegionUnion composes regions; query regions need not be
	// connected.
	RegionUnion = spatial.Union
	// RegionDifference subtracts one region from another.
	RegionDifference = spatial.Difference
	// Polygon is a simple polygon region (boundary inclusive).
	Polygon = spatial.Polygon
	// Grid is a W×H raster state space.
	Grid = spatial.Grid
	// LineSpace is a 1-D state space (the synthetic benchmark domain).
	LineSpace = spatial.LineSpace
	// RTree is a static spatial index over state centres.
	RTree = spatial.RTree
	// Graph is a road network whose nodes double as chain states.
	Graph = network.Graph
	// RoadNetworkSpec describes a synthetic road network to generate.
	RoadNetworkSpec = network.RoadNetworkSpec
)

// NewGrid returns a W×H grid with unit cells anchored at the origin.
func NewGrid(w, h int) *Grid { return spatial.NewGrid(w, h) }

// NewLineSpace returns a 1-D space with n states.
func NewLineSpace(n int) *LineSpace { return spatial.NewLineSpace(n) }

// NewRect returns the rectangle spanning two corners given in any order.
func NewRect(x1, y1, x2, y2 float64) Rect { return spatial.NewRect(x1, y1, x2, y2) }

// NewPolygon validates and wraps a vertex list (≥ 3 vertices) as a
// region.
func NewPolygon(vertices []Point) (Polygon, error) { return spatial.NewPolygon(vertices) }

// IndexSpace bulk-loads an R-tree over all states of a state space.
// degree ≤ 0 selects the default fan-out.
func IndexSpace(s spatial.StateSpace, degree int) *RTree {
	return spatial.IndexSpace(s, degree)
}

// NewRoadNetwork generates a synthetic road network with the given
// shape.
func NewRoadNetwork(spec RoadNetworkSpec) (*Graph, error) { return network.Generate(spec) }

// MunichSpec is a road network shaped like the paper's Munich dataset
// (73,120 nodes / 93,925 edges).
func MunichSpec(seed int64) RoadNetworkSpec { return network.MunichSpec(seed) }

// NorthAmericaSpec is a road network shaped like the paper's North
// America dataset (175,813 nodes / 179,102 edges).
func NorthAmericaSpec(seed int64) RoadNetworkSpec { return network.NorthAmericaSpec(seed) }

// ChainFromGraph derives a motion model from a road network: transition
// probabilities are random over each node's outgoing edges and sum to
// one, as in the paper's road-network experiments.
func ChainFromGraph(g *Graph, rng *rand.Rand) (*Chain, error) {
	return NewChain(g.TransitionMatrix(rng))
}
