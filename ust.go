// Package ust is a library for querying uncertain spatio-temporal data,
// reproducing Emrich, Kriegel, Mamoulis, Renz & Züfle, "Querying
// Uncertain Spatio-Temporal Data", ICDE 2012.
//
// Uncertain moving objects — icebergs drifting with the current,
// vehicles on a road network, customers in a mall — are modeled as
// discrete-time Markov chains over a finite state space. The library
// answers three probabilistic spatio-temporal queries under possible-
// worlds semantics, exactly:
//
//   - Exists (PST∃Q): probability the object is inside a spatial region
//     at *some* timestamp of a time window.
//   - ForAll (PST∀Q): probability the object stays inside the region at
//     *every* timestamp of the window.
//   - KTimes (PSTkQ): the full distribution over *how many* window
//     timestamps the object spends inside the region.
//
// Quick start:
//
//	chain, _ := ust.ChainFromDense([][]float64{
//		{0, 0, 1},
//		{0.6, 0, 0.4},
//		{0, 0.8, 0.2},
//	})
//	db := ust.NewDatabase(chain)
//	db.AddSimple(1, ust.PointDistribution(3, 1)) // observed at state s2
//	engine := ust.NewEngine(db, ust.Options{})
//	resp, _ := engine.Evaluate(ctx, ust.NewRequest(ust.PredicateExists,
//		ust.WithStates([]int{0, 1}), ust.WithTimes([]int{2, 3})))
//	// resp.Results[0].Prob == 0.864 — the paper's running example
//
// Evaluate answers every predicate (exists / forall / ktimes /
// eventually) with every strategy and ranking through a single Request
// value; EvaluateSeq streams the same results one object at a time for
// scans too large to materialize. The per-variant methods (Exists,
// ForAll, KTimes, TopKExists, …) remain as thin wrappers.
//
// Objects may carry multiple observations; queries between (or after)
// observations are answered by conditioning on all of them (Bayesian
// interpolation, Section VI of the paper). Databases may mix objects
// with different motion models.
//
// The implementation reduces every query to sparse vector-matrix
// products over the chain with an absorbing "hit" state folded in
// implicitly; see DESIGN.md for the architecture and EXPERIMENTS.md for
// the reproduction of the paper's evaluation.
package ust

import (
	"ust/internal/core"
	"ust/internal/markov"
	"ust/internal/shard"
	"ust/internal/sparse"
	"ust/query"
)

// Re-exported core types. The implementation lives in internal packages;
// these aliases are the supported public surface.
type (
	// Chain is a homogeneous first-order Markov chain: the motion model
	// of an uncertain object.
	Chain = markov.Chain
	// Distribution is a probability distribution over the state space.
	Distribution = markov.Distribution
	// Database holds uncertain objects sharing a default motion model.
	Database = core.Database
	// Object is an uncertain spatio-temporal object: a motion model
	// plus one or more observations.
	Object = core.Object
	// Observation is a (possibly uncertain) sighting: a pdf over states
	// at a timestamp.
	Observation = core.Observation
	// Engine evaluates probabilistic spatio-temporal queries.
	Engine = core.Engine
	// Options tune an Engine.
	Options = core.Options
	// Query is a spatio-temporal window: states × timestamps.
	Query = core.Query
	// Request is a complete query: predicate × window × execution
	// hints. Build one with NewRequest and the With… options.
	Request = core.Request
	// RequestOption customizes one Request.
	RequestOption = core.RequestOption
	// Response is the batch answer to a Request.
	Response = core.Response
	// Predicate identifies the query predicate of a Request.
	Predicate = core.Predicate
	// Result is a per-object probability (plus the visit-count
	// distribution for ktimes-requests).
	Result = core.Result
	// KResult is a per-object k-times distribution.
	KResult = core.KResult
	// Strategy selects the evaluation plan.
	Strategy = core.Strategy
	// WorldStats is the exact brute-force aggregate over possible
	// worlds (validation tool; exponential).
	WorldStats = core.WorldStats
	// IntervalChain is an envelope over a set of similar chains, used
	// for cluster-level pruning.
	IntervalChain = core.IntervalChain
	// Vec is the sparse/dense hybrid vector backing distributions.
	Vec = sparse.Vec
	// Matrix is a compressed-sparse-row matrix.
	Matrix = sparse.CSR
	// Sampler draws chain transitions in O(1) via alias tables; use it
	// for heavy Monte-Carlo budgets.
	Sampler = markov.Sampler
	// CostEstimate is a planner prediction for one strategy.
	CostEstimate = core.CostEstimate
	// CacheStats is a snapshot of the engine-wide score cache counters
	// (Engine.CacheStats).
	CacheStats = core.CacheStats
	// CacheReport is one evaluation's score-cache traffic
	// (Response.Cache).
	CacheReport = core.CacheReport
	// FilterReport is one evaluation's filter–refine funnel
	// (Response.Filter).
	FilterReport = core.FilterReport
	// Monitor is a continuous (standing) PST∃Q: register a window once
	// with Engine.NewMonitor, feed observations as they arrive, read
	// refreshed results incrementally. For a push-based, concurrent
	// alternative covering every predicate, see Service.Subscribe.
	Monitor = core.Monitor
	// Expr is a composable predicate expression: exists/forall atoms,
	// each with its own window, combined with And/Or/Not/Then and
	// evaluated exactly (correlations included) via NewExprRequest.
	Expr = core.Expr
	// ExprAtom is the leaf payload of an Expr.
	ExprAtom = core.ExprAtom
	// ExprOp identifies an Expr node kind.
	ExprOp = core.ExprOp
	// BatchItem is one request's outcome within Engine.EvaluateBatch /
	// EvaluateBatchSeq.
	BatchItem = core.BatchItem
	// Evaluator is the query surface every engine implementation
	// serves: Engine and ShardedEngine both satisfy it, and the
	// conformance machinery pins implementations to byte-identical
	// results through it.
	Evaluator = core.Evaluator
	// ShardedEngine partitions a database's objects across N shard
	// engines by consistent hashing and serves the same Evaluate/
	// EvaluateSeq/EvaluateBatch surface with byte-identical results;
	// see NewShardedEngine.
	ShardedEngine = shard.Router
	// SharedCache is a score cache shared across engines (the shard
	// fleet's, or any group of engines the caller wires together); see
	// NewSharedCache and Options.Cache.
	SharedCache = core.SharedCache
	// AggSpec asks for a probabilistic aggregate over the whole result
	// set: the exact count distribution (AggCount) or a per-timestep
	// occupancy profile (AggOccupancy); see NewAggRequest.
	AggSpec = core.AggSpec
	// AggKind selects the aggregate form of an AggSpec.
	AggKind = core.AggKind
	// AggResult is the answer to an aggregate request (Response.Agg):
	// the count PMF with its moments and iceberg tail, or the occupancy
	// profile.
	AggResult = core.AggResult
	// AggPoint is one timestep of an occupancy profile.
	AggPoint = core.AggPoint
	// FactorSet is an aggregate's factor decomposition — what
	// distributed deployments ship between workers and coordinator
	// before the canonical-order fold (see Engine.AggregateFactors).
	FactorSet = core.FactorSet
	// SweepTier extends the score cache's per-key single-flight across
	// process boundaries (Options.Sweeps).
	SweepTier = core.SweepTier
)

// DefaultCacheBytes is the default byte budget of the engine's shared
// score cache; tune with Options.CacheBytes.
const DefaultCacheBytes = core.DefaultCacheBytes

// Evaluation strategies.
const (
	// StrategyQueryBased: one backward sweep per chain, one dot product
	// per object. The default.
	StrategyQueryBased = core.StrategyQueryBased
	// StrategyObjectBased: one forward pass per object.
	StrategyObjectBased = core.StrategyObjectBased
	// StrategyMonteCarlo: the sampling baseline. Approximate.
	StrategyMonteCarlo = core.StrategyMonteCarlo
)

// Query predicates.
const (
	// PredicateExists: PST∃Q — inside the region at SOME window time.
	PredicateExists = core.PredicateExists
	// PredicateForAll: PST∀Q — inside the region at EVERY window time.
	PredicateForAll = core.PredicateForAll
	// PredicateKTimes: PSTkQ — distribution over the visit count.
	PredicateKTimes = core.PredicateKTimes
	// PredicateEventually: unbounded-horizon hitting probability.
	PredicateEventually = core.PredicateEventually
)

// Aggregate kinds.
const (
	// AggCount: the exact distribution of HOW MANY objects satisfy the
	// predicate, computed via generating functions (∏ᵢ(1−pᵢ+pᵢx)).
	AggCount = core.AggCount
	// AggOccupancy: per-timestep mean/variance (and iceberg tail) of the
	// number of objects inside the region at each window timestamp.
	AggOccupancy = core.AggOccupancy
)

// ErrAggregateStream is returned by the streaming entry points for
// aggregate requests: the answer is one distribution, not a per-object
// result stream — use Evaluate (or client.Query) instead.
var ErrAggregateStream = core.ErrAggregateStream

// NewAggRequest builds an aggregate request: evaluate the predicate
// over every object, then aggregate the per-object satisfaction
// probabilities into the spec's distribution. The count PMF in
// Response.Agg is exact and byte-identical across engine, sharded and
// remote evaluation:
//
//	resp, _ := engine.Evaluate(ctx, ust.NewAggRequest(ust.PredicateExists,
//		ust.AggSpec{Kind: ust.AggCount, MinCount: 10},
//		ust.WithStates([]int{100, 101}), ust.WithTimeRange(20, 25)))
//	// resp.Agg.PMF[k] = P(exactly k objects inside), resp.Agg.Tail = P(≥ 10)
func NewAggRequest(p Predicate, spec AggSpec, opts ...RequestOption) Request {
	return core.NewAggRequest(p, spec, opts...)
}

// WithAggregate turns any request (including compound-expression ones)
// into an aggregate request; see NewAggRequest.
func WithAggregate(spec AggSpec) RequestOption { return core.WithAggregate(spec) }

// NewRequest builds a Request for the given predicate; see the With…
// options for windows, strategies, ranking and budgets. Evaluate it
// with engine.Evaluate (batch) or engine.EvaluateSeq (streaming).
func NewRequest(p Predicate, opts ...RequestOption) Request { return core.NewRequest(p, opts...) }

// WithWindow sets the request's window from a Query value.
func WithWindow(q Query) RequestOption { return core.WithWindow(q) }

// WithStates sets the spatial predicate as raw state identifiers.
func WithStates(states []int) RequestOption { return core.WithStates(states) }

// WithTimes sets the temporal predicate as absolute timestamps.
func WithTimes(times []int) RequestOption { return core.WithTimes(times) }

// WithTimeRange sets the temporal predicate to {lo..hi}.
func WithTimeRange(lo, hi int) RequestOption { return core.WithTimeRange(lo, hi) }

// WithRegion sets a geometric spatial predicate, resolved to state ids
// through the resolver (an R-tree over the state space, or a raster
// space directly) at evaluation time.
func WithRegion(region Region, resolver RegionResolver) RequestOption {
	return core.WithRegion(region, resolver)
}

// WithStrategy forces the evaluation strategy for this request.
func WithStrategy(s Strategy) RequestOption { return core.WithStrategy(s) }

// WithAutoPlan lets the cost planner pick the cheaper exact strategy.
func WithAutoPlan() RequestOption { return core.WithAutoPlan() }

// WithThreshold keeps only objects with probability ≥ tau.
func WithThreshold(tau float64) RequestOption { return core.WithThreshold(tau) }

// WithTopK keeps the k highest-probability objects, ranked.
func WithTopK(k int) RequestOption { return core.WithTopK(k) }

// WithParallelism fans per-object work out over workers goroutines
// (≤ 0 selects GOMAXPROCS).
func WithParallelism(workers int) RequestOption { return core.WithParallelism(workers) }

// WithMonteCarloBudget overrides the Monte-Carlo sample budget and seed
// for this request.
func WithMonteCarloBudget(samples int, seed int64) RequestOption {
	return core.WithMonteCarloBudget(samples, seed)
}

// WithHittingLimits tunes the fixed-point iteration of
// PredicateEventually requests.
func WithHittingLimits(maxSteps int, tol float64) RequestOption {
	return core.WithHittingLimits(maxSteps, tol)
}

// WithCache toggles the engine's shared score cache for this request
// (on by default when the engine has one). Repeated and standing
// queries share backward sweeps through it; Response.Cache reports the
// traffic. Results are identical either way.
func WithCache(enabled bool) RequestOption { return core.WithCache(enabled) }

// WithFilterRefine toggles the filter–refine stage for threshold/top-k
// requests on the exact strategies (on by default): cheap reachability
// bounds prune objects before any exact evaluation, with byte-identical
// results. Response.Filter reports the funnel.
func WithFilterRefine(enabled bool) RequestOption { return core.WithFilterRefine(enabled) }

// --- compound expressions -------------------------------------------------
//
// The predicate algebra: atoms are exists/forall predicates with their
// own windows; And/Or/Not/Then combine them. A compound request is
// evaluated EXACTLY — the atoms share one trajectory distribution, so
// their correlations are handled by flag-bit state-space augmentation
// rather than naive probability arithmetic. Express one as a Request
// with NewExprRequest (all ranking/strategy/caching options apply), or
// parse it from the text query language with ParseQuery.

// ExistsAtom is a PST∃Q leaf for compound expressions: inside the
// region at SOME window timestamp. Use the window options (WithStates,
// WithTimes, WithTimeRange, WithRegion) to define it.
func ExistsAtom(opts ...RequestOption) Expr { return core.ExistsAtom(opts...) }

// ForAllAtom is a PST∀Q leaf for compound expressions: inside the
// region at EVERY window timestamp.
func ForAllAtom(opts ...RequestOption) Expr { return core.ForAllAtom(opts...) }

// And is the conjunction of expressions.
func And(operands ...Expr) Expr { return core.And(operands...) }

// Or is the disjunction of expressions.
func Or(operands ...Expr) Expr { return core.Or(operands...) }

// Not negates an expression.
func Not(operand Expr) Expr { return core.Not(operand) }

// Then is temporal sequencing: every operand must hold, and each
// operand's window must end strictly before the next one's begins.
func Then(operands ...Expr) Expr { return core.Then(operands...) }

// NewExprRequest builds a compound-expression request; evaluate it with
// Engine.Evaluate like any other (threshold/top-k ranking, strategy
// overrides, caching and filter–refine pruning all apply).
func NewExprRequest(x Expr, opts ...RequestOption) Request {
	return core.NewExprRequest(x, opts...)
}

// WithExpr turns a request into a compound-expression query.
func WithExpr(x Expr) RequestOption { return core.WithExpr(x) }

// MaxExprAtoms bounds the atoms of one expression (augmented evaluation
// cost doubles per atom).
const MaxExprAtoms = core.MaxExprAtoms

// PredicateExpr marks a compound-expression Request (set via WithExpr /
// NewExprRequest).
const PredicateExpr = core.PredicateExpr

// BruteForceExpr evaluates a compound expression for one object by
// exhaustive possible-worlds enumeration (exponential; validation and
// tiny instances only).
func BruteForceExpr(chain *Chain, o *Object, x Expr) (float64, error) {
	return core.BruteForceExpr(chain, o, x)
}

// ParseQuery compiles a text-language query (package ust/query) into a
// Request:
//
//	req, err := ust.ParseQuery(
//		"exists(states(100-120) @ [20,25]) and not forall(states(7) @ [5,9]) where tau=0.3")
//
// The same strings are accepted by ustquery -q, the HTTP API's "query"
// envelope field and the Go client's QueryText; parsed requests work
// everywhere a Request does, including Service.Subscribe. Errors are
// *query.ParseError values carrying the offending column.
func ParseQuery(text string) (Request, error) { return query.Parse(text) }

// FormatQuery renders a Request in the text query language's canonical
// form (the inverse of ParseQuery, for every request the language can
// express).
func FormatQuery(req Request) (string, error) { return query.Format(req) }

// NewChain validates m as row-stochastic and wraps it as a motion model.
func NewChain(m *Matrix) (*Chain, error) { return markov.NewChain(m) }

// ChainFromDense builds a chain from a dense transition matrix.
func ChainFromDense(rows [][]float64) (*Chain, error) { return markov.FromDense(rows) }

// NewDatabase creates a database with the given default motion model.
func NewDatabase(defaultChain *Chain) *Database { return core.NewDatabase(defaultChain) }

// NewObject builds an object from observations (sorted by time). chain
// may be nil to use the database default.
func NewObject(id int, chain *Chain, obs ...Observation) (*Object, error) {
	return core.NewObject(id, chain, obs...)
}

// NewEngine builds a query engine over db.
func NewEngine(db *Database, opts Options) *Engine { return core.NewEngine(db, opts) }

// NewShardedEngine builds a sharded engine over db: objects partition
// across `shards` engines by consistent hashing on object id, requests
// fan out concurrently (bounded by WithParallelism, cancellation
// propagating to every shard), and result streams merge back into
// byte-identical single-engine output — ordered merge for scans, k-way
// heap merge with the exact tie-break order for top-k. All shards share
// one score cache, so each distinct backward sweep is computed once
// fleet-wide. The one documented divergence: the Monte-Carlo strategy
// always uses per-object seeding (the behaviour of WithParallelism(≥2)
// on a single engine). Ingest goes through the router's Add /
// ReplaceObject / Observe.
func NewShardedEngine(db *Database, shards int, opts Options) (*ShardedEngine, error) {
	return shard.New(db, shards, opts)
}

// NewSharedCache builds a score cache that several engines can share
// via Options.Cache (0 selects DefaultCacheBytes). NewShardedEngine
// wires one up automatically; explicit construction is for callers
// composing their own fleets.
func NewSharedCache(capacityBytes int) *SharedCache { return core.NewSharedCache(capacityBytes) }

// NewQuery builds a query window from state ids and timestamps (each
// copied, sorted, deduped).
func NewQuery(states, times []int) Query { return core.NewQuery(states, times) }

// Interval returns the contiguous id range {lo..hi}; a convenience for
// interval-shaped query regions and time windows.
func Interval(lo, hi int) []int { return core.Interval(lo, hi) }

// PointDistribution is a precise observation: all mass on one state.
func PointDistribution(numStates, state int) *Distribution {
	return markov.PointDistribution(numStates, state)
}

// UniformOver is an imprecise observation: uniform mass over the states.
func UniformOver(numStates int, states []int) *Distribution {
	return markov.UniformOver(numStates, states)
}

// WeightedOver builds a normalized distribution from state/weight pairs.
func WeightedOver(numStates int, states []int, weights []float64) (*Distribution, error) {
	return markov.WeightedOver(numStates, states, weights)
}

// NewMatrixFromDense builds a sparse matrix from dense rows (zeros are
// dropped).
func NewMatrixFromDense(rows [][]float64) *Matrix { return sparse.FromDense(rows) }

// NewIntervalChain builds the envelope of a set of similar chains for
// cluster-level pruning.
func NewIntervalChain(chains []*Chain) (*IntervalChain, error) {
	return core.NewIntervalChain(chains)
}

// BruteForce enumerates all possible worlds of an object (exponential;
// validation and tiny instances only).
func BruteForce(chain *Chain, o *Object, q Query) (*WorldStats, error) {
	return core.BruteForce(chain, o, q)
}

// PosteriorAt returns the state distribution of an object at time t
// conditioned on all its observations (interpolation/smoothing).
func PosteriorAt(chain *Chain, obs []Observation, t int) (*Distribution, error) {
	return core.PosteriorAt(chain, obs, t)
}

// NewSampler precomputes alias tables over the chain for O(1)
// transition sampling.
func NewSampler(c *Chain) *Sampler { return markov.NewSampler(c) }

// Stationary approximates the chain's stationary distribution by power
// iteration. Pass maxIter/tol ≤ 0 for defaults.
func Stationary(c *Chain, maxIter int, tol float64) (*Distribution, int, error) {
	return markov.Stationary(c, maxIter, tol)
}

// MixingTime estimates the steps needed for a point mass at start to
// come within tol (L1) of the stationary distribution pi.
func MixingTime(c *Chain, start int, pi *Distribution, maxSteps int, tol float64) (int, error) {
	return markov.MixingTime(c, start, pi, maxSteps, tol)
}
