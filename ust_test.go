package ust_test

import (
	"math"
	"testing"

	"ust"
)

// The public-API tests exercise the facade exactly as README consumers
// would, including the paper's running example end to end.

func paperSetup(t testing.TB) (*ust.Database, *ust.Engine) {
	t.Helper()
	chain, err := ust.ChainFromDense([][]float64{
		{0, 0, 1},
		{0.6, 0, 0.4},
		{0, 0.8, 0.2},
	})
	if err != nil {
		t.Fatalf("ChainFromDense: %v", err)
	}
	db := ust.NewDatabase(chain)
	if err := db.AddSimple(1, ust.PointDistribution(3, 1)); err != nil {
		t.Fatalf("AddSimple: %v", err)
	}
	return db, ust.NewEngine(db, ust.Options{})
}

func TestQuickstartExample(t *testing.T) {
	_, engine := paperSetup(t)
	res, err := engine.Exists(ust.NewQuery([]int{0, 1}, []int{2, 3}))
	if err != nil {
		t.Fatalf("Exists: %v", err)
	}
	if math.Abs(res[0].Prob-0.864) > 1e-12 {
		t.Errorf("quickstart P∃ = %v, want 0.864", res[0].Prob)
	}
}

func TestPublicAPIAllPredicates(t *testing.T) {
	db, engine := paperSetup(t)
	q := ust.NewQuery(ust.Interval(0, 1), ust.Interval(2, 3))

	exists, err := engine.Exists(q)
	if err != nil {
		t.Fatal(err)
	}
	forAll, err := engine.ForAll(q)
	if err != nil {
		t.Fatal(err)
	}
	kTimes, err := engine.KTimes(q)
	if err != nil {
		t.Fatal(err)
	}
	// Consistency among the three predicates.
	if math.Abs((1-kTimes[0].Dist[0])-exists[0].Prob) > 1e-12 {
		t.Error("Exists != 1 - P(0 visits)")
	}
	last := kTimes[0].Dist[len(kTimes[0].Dist)-1]
	if math.Abs(last-forAll[0].Prob) > 1e-12 {
		t.Error("ForAll != P(all visits)")
	}
	// Brute force agrees through the public facade too.
	o := db.Objects()[0]
	bf, err := ust.BruteForce(db.DefaultChain(), o, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bf.PExists-exists[0].Prob) > 1e-12 {
		t.Error("BruteForce disagrees with engine")
	}
}

func TestPublicAPIStrategiesAgree(t *testing.T) {
	db, _ := paperSetup(t)
	q := ust.NewQuery([]int{0, 1}, []int{2, 3})
	var probs []float64
	for _, s := range []ust.Strategy{ust.StrategyQueryBased, ust.StrategyObjectBased} {
		engine := ust.NewEngine(db, ust.Options{Strategy: s})
		res, err := engine.Exists(q)
		if err != nil {
			t.Fatalf("strategy %v: %v", s, err)
		}
		probs = append(probs, res[0].Prob)
	}
	if math.Abs(probs[0]-probs[1]) > 1e-12 {
		t.Errorf("strategies disagree: %v", probs)
	}
}

func TestPublicAPIMultiObservation(t *testing.T) {
	chain, err := ust.ChainFromDense([][]float64{
		{0, 0, 1},
		{0.5, 0, 0.5},
		{0, 0.8, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	db := ust.NewDatabase(chain)
	o, err := ust.NewObject(1, nil,
		ust.Observation{Time: 0, PDF: ust.PointDistribution(3, 0)},
		ust.Observation{Time: 3, PDF: ust.PointDistribution(3, 1)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add(o); err != nil {
		t.Fatal(err)
	}
	engine := ust.NewEngine(db, ust.Options{})
	res, err := engine.Exists(ust.NewQuery([]int{0, 1}, []int{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Prob != 0 {
		t.Errorf("multi-obs P∃ = %v, want 0 (paper Section VI)", res[0].Prob)
	}
	post, err := ust.PosteriorAt(chain, o.Observations, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := post.Validate(1e-9); err != nil {
		t.Errorf("posterior invalid: %v", err)
	}
}

func TestPublicAPIWeightedObservation(t *testing.T) {
	d, err := ust.WeightedOver(5, []int{1, 3}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.P(1)-0.75) > 1e-12 {
		t.Errorf("P(1) = %v", d.P(1))
	}
	if _, err := ust.WeightedOver(5, []int{9}, []float64{1}); err == nil {
		t.Error("out-of-range state accepted")
	}
}

func TestPublicAPIIntervalChain(t *testing.T) {
	a, _ := ust.ChainFromDense([][]float64{{0.5, 0.5}, {0.4, 0.6}})
	b, _ := ust.ChainFromDense([][]float64{{0.6, 0.4}, {0.5, 0.5}})
	env, err := ust.NewIntervalChain([]*ust.Chain{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !env.Contains(a) || !env.Contains(b) {
		t.Error("envelope must contain its members")
	}
	init := ust.PointDistribution(2, 0)
	lo, hi, err := env.ExistsBoundsCluster(init.Vec(), 0, ust.NewQuery([]int{1}, []int{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if lo > hi || lo < 0 || hi > 1 {
		t.Errorf("bounds [%v, %v] invalid", lo, hi)
	}
}

func TestPublicAPIMatrixConstruction(t *testing.T) {
	m := ust.NewMatrixFromDense([][]float64{{0, 1}, {1, 0}})
	chain, err := ust.NewChain(m)
	if err != nil {
		t.Fatal(err)
	}
	if chain.NumStates() != 2 {
		t.Error("NumStates wrong")
	}
	if _, err := ust.NewChain(ust.NewMatrixFromDense([][]float64{{2}})); err == nil {
		t.Error("non-stochastic matrix accepted")
	}
}

func TestPublicAPIWorkloadGeneration(t *testing.T) {
	p := ust.DefaultSyntheticParams(3)
	p.NumObjects, p.NumStates = 20, 500
	db, err := ust.GenerateSyntheticDatabase(p)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 20 || db.DefaultChain().NumStates() != 500 {
		t.Errorf("generated db: %d objects, %d states", db.Len(), db.DefaultChain().NumStates())
	}
	engine := ust.NewEngine(db, ust.Options{})
	if _, err := engine.Exists(ust.NewQuery(ust.Interval(100, 120), ust.Interval(5, 8))); err != nil {
		t.Fatal(err)
	}

	trs, err := ust.GenerateTrajectories(db.DefaultChain(), 3, ust.TrajectoryParams{
		Horizon:          6,
		ObservationTimes: []int{0, 6},
		Noise:            1,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	o, err := ust.ObjectFromTrajectory(100, nil, trs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Add(o); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Exists(ust.NewQuery(ust.Interval(100, 120), ust.Interval(2, 5))); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIStructuralAnalysis(t *testing.T) {
	chain, err := ust.ChainFromDense([][]float64{
		{0, 0, 1},
		{0.6, 0, 0.4},
		{0, 0.8, 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ust.Irreducible(chain) || !ust.Aperiodic(chain) {
		t.Error("paper chain should be irreducible and aperiodic")
	}
	if comps := ust.SCCs(chain); len(comps) != 1 {
		t.Errorf("SCCs = %v", comps)
	}
	pi, iters, err := ust.Stationary(chain, 0, 0)
	if err != nil {
		t.Fatalf("Stationary: %v", err)
	}
	if iters == 0 || pi.Mass() < 0.99 {
		t.Errorf("stationary: %d iters, mass %g", iters, pi.Mass())
	}
	if _, err := ust.MixingTime(chain, 0, pi, 0, 0); err != nil {
		t.Errorf("MixingTime: %v", err)
	}
}

func TestPublicAPIPolygonRegion(t *testing.T) {
	grid := ust.NewGrid(10, 10)
	tri, err := ust.NewPolygon([]ust.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}})
	if err != nil {
		t.Fatal(err)
	}
	idx := ust.IndexSpace(grid, 0)
	states := idx.Search(tri)
	if len(states) == 0 {
		t.Fatal("triangle resolved to no states")
	}
	knn := idx.KNearest(ust.Point{X: 5, Y: 5}, 4)
	if len(knn) != 4 {
		t.Errorf("KNearest returned %d", len(knn))
	}
}

func TestPublicAPIMonitorAndTopK(t *testing.T) {
	db, _ := paperSetup(t)
	engine := ust.NewEngine(db, ust.Options{})
	q := ust.NewQuery([]int{0, 1}, []int{2, 3})
	mon := engine.NewMonitor(q)
	res, err := mon.Results()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res[0].Prob-0.864) > 1e-12 {
		t.Errorf("monitor P = %g", res[0].Prob)
	}
	top, err := engine.TopKExists(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 1 || math.Abs(top[0].Prob-0.864) > 1e-12 {
		t.Errorf("TopK = %v", top)
	}
	count, err := engine.ExpectedCount(q)
	if err != nil || math.Abs(count-0.864) > 1e-12 {
		t.Errorf("ExpectedCount = (%g, %v)", count, err)
	}
}
