package ust

import (
	"math/rand"

	"ust/internal/core"
	"ust/internal/gen"
	"ust/internal/markov"
)

// Workload generation: the paper's Table I synthetic datasets and
// ground-truth trajectory workloads, exposed for benchmarking and
// testing of downstream systems.

type (
	// SyntheticParams are the Table I dataset parameters.
	SyntheticParams = gen.Params
	// TrajectoryParams describe a hidden-path observation workload.
	TrajectoryParams = gen.TrajectoryParams
	// Trajectory is a hidden true path plus its emitted sightings.
	Trajectory = gen.Trajectory
	// Sighting is one emitted observation of a hidden path.
	Sighting = gen.Sighting
)

// DefaultSyntheticParams returns the paper's Table I defaults
// (|D| = 10,000, |S| = 100,000, spreads 5, max step 40).
func DefaultSyntheticParams(seed int64) SyntheticParams { return gen.Defaults(seed) }

// GenerateSyntheticDatabase builds a Table I dataset and loads it into a
// database (one observation per object at t = 0).
func GenerateSyntheticDatabase(p SyntheticParams) (*Database, error) {
	ds, err := gen.Generate(p)
	if err != nil {
		return nil, err
	}
	db := core.NewDatabase(ds.Chain)
	for i, o := range ds.Objects {
		if err := db.AddSimple(i, o); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// GenerateSyntheticChain builds only the transition matrix of a Table I
// dataset.
func GenerateSyntheticChain(p SyntheticParams, rng *rand.Rand) (*Chain, error) {
	return gen.GenerateChain(p, rng)
}

// GenerateTrajectories draws hidden true paths over the chain and emits
// noisy, guaranteed-consistent observation sequences from them.
func GenerateTrajectories(chain *Chain, numObjects int, p TrajectoryParams, seed int64) ([]*Trajectory, error) {
	return gen.GenerateTrajectories(chain, numObjects, p, seed)
}

// ObjectFromTrajectory converts a generated trajectory's sightings into
// an Object ready for database insertion.
func ObjectFromTrajectory(id int, chain *Chain, tr *Trajectory) (*Object, error) {
	obs := make([]Observation, len(tr.Sightings))
	for k, s := range tr.Sightings {
		obs[k] = Observation{Time: s.Time, PDF: s.PDF}
	}
	return core.NewObject(id, chain, obs...)
}

// Structural analysis helpers.

// SCCs returns the strongly connected components of the chain's
// transition graph in reverse topological order.
func SCCs(c *Chain) [][]int { return markov.SCCs(c) }

// Irreducible reports whether every state reaches every other state.
func Irreducible(c *Chain) bool { return markov.Irreducible(c) }

// Aperiodic reports whether the chain's period is 1 (see
// markov.Aperiodic for the reducible-chain caveat).
func Aperiodic(c *Chain) bool { return markov.Aperiodic(c) }
